package resolver

import (
	"fmt"
	"testing"
	"time"

	"jxta/internal/endpoint"
	"jxta/internal/ids"
	"jxta/internal/message"
	"jxta/internal/netmodel"
	"jxta/internal/simnet"
	"jxta/internal/transport"
)

type peer struct {
	id  ids.ID
	ep  *endpoint.Endpoint
	res *Service
	tr  *transport.Sim
}

func newPeers(t *testing.T, sched *simnet.Scheduler, n int) []*peer {
	t.Helper()
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	peers := make([]*peer, n)
	for i := range peers {
		name := fmt.Sprintf("p%d", i)
		e := sched.NewEnv(name)
		tr, err := net.Attach(name, netmodel.Site(i%netmodel.NumSites))
		if err != nil {
			t.Fatal(err)
		}
		id := ids.NewRandom(ids.KindPeer, e.Rand())
		ep := endpoint.New(e, id, tr)
		peers[i] = &peer{id: id, ep: ep, res: New(e, ep), tr: tr}
	}
	// Full mesh of routes for test convenience.
	for _, a := range peers {
		for _, b := range peers {
			if a != b {
				a.ep.AddRoute(b.id, b.tr.Addr())
			}
		}
	}
	return peers
}

func TestQueryResponse(t *testing.T) {
	sched := simnet.NewScheduler(1)
	ps := newPeers(t, sched, 2)
	a, b := ps[0], ps[1]
	b.res.RegisterHandler("echo", func(q *Query) {
		b.res.Respond(q, append([]byte("echo:"), q.Payload...))
	})
	var got string
	var from ids.ID
	_, err := a.res.SendQuery(b.id, "echo", []byte("hi"), func(p []byte, src ids.ID, _ int) {
		got = string(p)
		from = src
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sched.Run(time.Second)
	if got != "echo:hi" || !from.Equal(b.id) {
		t.Fatalf("got=%q from=%s", got, from.Short())
	}
}

func TestQueryFields(t *testing.T) {
	sched := simnet.NewScheduler(2)
	ps := newPeers(t, sched, 2)
	a, b := ps[0], ps[1]
	var seen *Query
	b.res.RegisterHandler("inspect", func(q *Query) { seen = q })
	qid, _ := a.res.SendQuery(b.id, "inspect", []byte("xyz"), func([]byte, ids.ID, int) {}, nil)
	sched.Run(time.Second)
	if seen == nil {
		t.Fatal("handler never ran")
	}
	if seen.QID != qid || !seen.Src.Equal(a.id) || seen.Hops != 0 ||
		seen.Handler != "inspect" || string(seen.Payload) != "xyz" {
		t.Fatalf("query fields: %+v (qid want %d)", seen, qid)
	}
	if seen.SrcAddr != a.tr.Addr() {
		t.Fatalf("SrcAddr = %s", seen.SrcAddr)
	}
}

func TestForwardPreservesOriginator(t *testing.T) {
	sched := simnet.NewScheduler(3)
	ps := newPeers(t, sched, 3)
	a, b, c := ps[0], ps[1], ps[2]
	// b forwards everything to c; c answers.
	b.res.RegisterHandler("svc", func(q *Query) { b.res.Forward(q, c.id) })
	var atC *Query
	c.res.RegisterHandler("svc", func(q *Query) {
		atC = q
		c.res.Respond(q, []byte("from-c"))
	})
	var got string
	a.res.SendQuery(b.id, "svc", []byte("q"), func(p []byte, _ ids.ID, _ int) { got = string(p) }, nil)
	sched.Run(time.Second)
	if atC == nil || !atC.Src.Equal(a.id) || atC.Hops != 1 {
		t.Fatalf("forwarded query wrong: %+v", atC)
	}
	if got != "from-c" {
		t.Fatalf("response = %q; direct response after forward failed", got)
	}
}

func TestResponderWithoutPriorRouteUsesSrcAddr(t *testing.T) {
	// c never knew a; the query's SrcAddr must be enough to respond.
	sched := simnet.NewScheduler(4)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	mk := func(name string) *peer {
		e := sched.NewEnv(name)
		tr, _ := net.Attach(name, netmodel.Rennes)
		id := ids.NewRandom(ids.KindPeer, e.Rand())
		ep := endpoint.New(e, id, tr)
		return &peer{id: id, ep: ep, res: New(e, ep), tr: tr}
	}
	a, b, c := mk("a"), mk("b"), mk("c")
	a.ep.AddRoute(b.id, b.tr.Addr())
	b.ep.AddRoute(c.id, c.tr.Addr())
	b.res.RegisterHandler("svc", func(q *Query) { b.res.Forward(q, c.id) })
	c.res.RegisterHandler("svc", func(q *Query) { c.res.Respond(q, []byte("ok")) })
	var got string
	a.res.SendQuery(b.id, "svc", nil, func(p []byte, _ ids.ID, _ int) { got = string(p) }, nil)
	sched.Run(time.Second)
	if got != "ok" {
		t.Fatal("response never reached originator lacking prior route")
	}
}

func TestTimeoutFires(t *testing.T) {
	sched := simnet.NewScheduler(5)
	ps := newPeers(t, sched, 2)
	a, b := ps[0], ps[1]
	b.res.RegisterHandler("void", func(q *Query) {}) // never answers
	a.res.Timeout = 5 * time.Second
	timedOut := false
	responded := false
	a.res.SendQuery(b.id, "void", nil,
		func([]byte, ids.ID, int) { responded = true },
		func(uint64) { timedOut = true })
	sched.Run(time.Minute)
	if !timedOut || responded {
		t.Fatalf("timedOut=%v responded=%v", timedOut, responded)
	}
}

func TestResponseAfterTimeoutIgnored(t *testing.T) {
	sched := simnet.NewScheduler(6)
	ps := newPeers(t, sched, 2)
	a, b := ps[0], ps[1]
	var saved *Query
	b.res.RegisterHandler("late", func(q *Query) { saved = q })
	a.res.Timeout = time.Second
	responses := 0
	a.res.SendQuery(b.id, "late", nil, func([]byte, ids.ID, int) { responses++ }, nil)
	sched.Run(10 * time.Second)
	// Answer long after the timeout.
	b.res.Respond(saved, []byte("too late"))
	sched.Run(20 * time.Second)
	if responses != 0 {
		t.Fatal("late response reached the callback")
	}
}

func TestMultipleResponses(t *testing.T) {
	sched := simnet.NewScheduler(7)
	ps := newPeers(t, sched, 3)
	a, b, c := ps[0], ps[1], ps[2]
	b.res.RegisterHandler("multi", func(q *Query) {
		b.res.Respond(q, []byte("b"))
		b.res.Forward(q, c.id)
	})
	c.res.RegisterHandler("multi", func(q *Query) { c.res.Respond(q, []byte("c")) })
	var got []string
	a.res.SendQuery(b.id, "multi", nil, func(p []byte, _ ids.ID, _ int) { got = append(got, string(p)) }, nil)
	sched.Run(time.Minute)
	if len(got) != 2 {
		t.Fatalf("got %v, want two responses", got)
	}
}

func TestCancelDropsResponses(t *testing.T) {
	sched := simnet.NewScheduler(8)
	ps := newPeers(t, sched, 2)
	a, b := ps[0], ps[1]
	b.res.RegisterHandler("slow", func(q *Query) { b.res.Respond(q, []byte("x")) })
	calls := 0
	qid, _ := a.res.SendQuery(b.id, "slow", nil, func([]byte, ids.ID, int) { calls++ }, nil)
	a.res.Cancel(qid)
	sched.Run(time.Minute)
	if calls != 0 {
		t.Fatal("canceled query still delivered responses")
	}
}

func TestUnknownHandlerIgnored(t *testing.T) {
	sched := simnet.NewScheduler(9)
	ps := newPeers(t, sched, 2)
	a, b := ps[0], ps[1]
	timedOut := false
	a.res.Timeout = 2 * time.Second
	a.res.SendQuery(b.id, "nobody-home", nil, func([]byte, ids.ID, int) {
		t.Error("response from unregistered handler")
	}, func(uint64) { timedOut = true })
	sched.Run(time.Minute)
	if !timedOut {
		t.Fatal("query to unknown handler did not time out")
	}
}

func TestSendQueryNoRoute(t *testing.T) {
	sched := simnet.NewScheduler(10)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	e := sched.NewEnv("solo")
	tr, _ := net.Attach("solo", netmodel.Rennes)
	id := ids.NewRandom(ids.KindPeer, e.Rand())
	ep := endpoint.New(e, id, tr)
	res := New(e, ep)
	ghost := ids.FromName(ids.KindPeer, "ghost")
	if _, err := res.SendQuery(ghost, "svc", nil, func([]byte, ids.ID, int) {}, nil); err == nil {
		t.Fatal("SendQuery without route succeeded")
	}
}

func TestMalformedResolverMessagesIgnored(t *testing.T) {
	sched := simnet.NewScheduler(11)
	ps := newPeers(t, sched, 2)
	a, b := ps[0], ps[1]
	handled := 0
	b.res.RegisterHandler("svc", func(q *Query) { handled++ })
	// No QID.
	m1 := message.New().AddString(ns, elemHandler, "svc")
	a.ep.Send(b.id, ServiceName, m1)
	// Bad hop count.
	m2 := message.New()
	m2.AddString(ns, elemHandler, "svc")
	m2.AddString(ns, elemQID, "7")
	m2.AddString(ns, elemSrc, a.id.String())
	m2.AddString(ns, elemHops, "notanumber")
	m2.Add(ns, elemQuery, []byte("x"))
	a.ep.Send(b.id, ServiceName, m2)
	// Bad src.
	m3 := message.New()
	m3.AddString(ns, elemHandler, "svc")
	m3.AddString(ns, elemQID, "8")
	m3.AddString(ns, elemSrc, "garbage")
	m3.AddString(ns, elemHops, "0")
	m3.Add(ns, elemQuery, []byte("x"))
	a.ep.Send(b.id, ServiceName, m3)
	sched.Run(time.Second)
	if handled != 0 {
		t.Fatalf("malformed messages handled %d times", handled)
	}
}

func TestForwardHopLimit(t *testing.T) {
	sched := simnet.NewScheduler(12)
	ps := newPeers(t, sched, 2)
	a, b := ps[0], ps[1]
	// a and b bounce the query between each other forever; the hop limit
	// must kill it.
	bounces := 0
	a.res.RegisterHandler("pingpong", func(q *Query) {
		bounces++
		a.res.Forward(q, b.id)
	})
	b.res.RegisterHandler("pingpong", func(q *Query) {
		bounces++
		b.res.Forward(q, a.id)
	})
	a.res.SendQuery(b.id, "pingpong", nil, func([]byte, ids.ID, int) {}, nil)
	sched.Run(time.Hour)
	if bounces == 0 || bounces > 2*MaxHops {
		t.Fatalf("bounces = %d, hop limit broken", bounces)
	}
}

func BenchmarkQueryResponse(b *testing.B) {
	sched := simnet.NewScheduler(1)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	mk := func(name string) *peer {
		e := sched.NewEnv(name)
		tr, _ := net.Attach(name, netmodel.Rennes)
		id := ids.NewRandom(ids.KindPeer, e.Rand())
		ep := endpoint.New(e, id, tr)
		return &peer{id: id, ep: ep, res: New(e, ep), tr: tr}
	}
	x, y := mk("x"), mk("y")
	x.ep.AddRoute(y.id, y.tr.Addr())
	y.res.RegisterHandler("echo", func(q *Query) { y.res.Respond(q, q.Payload) })
	payload := []byte("benchmark")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := x.res.SendQuery(y.id, "echo", payload, func([]byte, ids.ID, int) {}, nil); err != nil {
			b.Fatal(err)
		}
		for sched.Pending() > 0 {
			sched.Step()
		}
	}
}
