// Package resolver implements the JXTA peer resolver protocol: the generic,
// topology-independent query/response layer sitting between the rendezvous
// protocol and higher services (Figure 1 of the paper). Services register a
// named handler; queries carry the handler name, a query ID, the source
// peer and its return address, and a hop count. A handler may answer a
// query, forward it toward a better-placed peer (the LC-DHT replica walk),
// or ignore it. Responses travel directly back to the querying peer.
package resolver

import (
	"strconv"
	"time"

	"jxta/internal/endpoint"
	"jxta/internal/env"
	"jxta/internal/ids"
	"jxta/internal/message"
	"jxta/internal/metrics"
	"jxta/internal/transport"
)

// ServiceName is the endpoint service the resolver listens on.
const ServiceName = "resolver"

// Message elements, namespace "res".
const (
	ns           = "res"
	elemHandler  = "Handler"
	elemQID      = "QID"
	elemSrc      = "Src"
	elemSrcAddr  = "SrcAddr"
	elemHops     = "Hops"
	elemQuery    = "Query"
	elemResponse = "Response"
)

// MaxHops bounds query forwarding; the LC-DHT walk is O(r) so the bound must
// exceed any experiment's rendezvous count.
const MaxHops = 1024

// Query is an in-flight resolver query as seen by a handler.
type Query struct {
	Handler string
	QID     uint64
	Src     ids.ID         // the originating peer
	SrcAddr transport.Addr // return route hint
	Hops    int
	Payload []byte
}

// Handler processes queries addressed to a registered name. The handler owns
// the query: it may call Respond, Forward, both or neither.
type Handler func(q *Query)

// ResponseCallback receives a response to a locally issued query. from is
// the responding peer; hops is how many resolver forwards the query took
// before it was answered (0: answered by the peer it was sent to), echoed
// back in the response so originators can account routing cost per lookup.
type ResponseCallback func(payload []byte, from ids.ID, hops int)

// TimeoutCallback fires if no response arrived within the query timeout.
type TimeoutCallback func(qid uint64)

// Service is one peer's resolver.
type Service struct {
	env env.Env
	ep  *endpoint.Endpoint

	handlers map[string]Handler
	pending  map[uint64]*pendingQuery
	nextQID  uint64

	// frozen implements edge hibernation; see hibernate.go.
	frozen *resFrozen

	// Timeout is how long a locally issued query waits for its first
	// response before the timeout callback fires. Zero disables timeouts.
	Timeout time.Duration

	// m holds the runtime instruments; always non-nil (New pre-instruments,
	// node.New re-instruments with the node's shared registry).
	m *resMetrics
}

type pendingQuery struct {
	cb        ResponseCallback
	onTimeout TimeoutCallback
	timer     env.Timer
}

// New builds the resolver for a peer and registers its endpoint handler.
func New(e env.Env, ep *endpoint.Endpoint) *Service {
	s := &Service{
		env:      e,
		ep:       ep,
		handlers: make(map[string]Handler),
		pending:  make(map[uint64]*pendingQuery),
		Timeout:  30 * time.Second,
	}
	ep.Register(ServiceName, s.receive)
	s.Instrument(metrics.Discard())
	return s
}

// RegisterHandler installs (or replaces) the named query handler.
func (s *Service) RegisterHandler(name string, h Handler) {
	s.thaw()
	s.handlers[name] = h
}

// SendQuery issues a query to the given peer (an edge peer sends to its
// rendezvous; a rendezvous may query any peerview member). cb fires for
// every response received; onTimeout (optional) fires once if nothing
// arrived within Timeout. The query ID is returned for correlation.
func (s *Service) SendQuery(dst ids.ID, handler string, payload []byte, cb ResponseCallback, onTimeout TimeoutCallback) (uint64, error) {
	s.thaw()
	s.nextQID++
	qid := s.nextQID
	p := &pendingQuery{cb: cb, onTimeout: onTimeout}
	if s.Timeout > 0 {
		p.timer = s.env.After(s.Timeout, func() {
			if cur, ok := s.pending[qid]; ok && cur == p {
				delete(s.pending, qid)
				s.m.timeouts.Inc()
				if p.onTimeout != nil {
					p.onTimeout(qid)
				}
			}
		})
	}
	s.pending[qid] = p

	m := message.New()
	m.AddString(ns, elemHandler, handler)
	m.AddString(ns, elemQID, strconv.FormatUint(qid, 10))
	m.AddString(ns, elemSrc, s.ep.IDString())
	m.AddString(ns, elemSrcAddr, string(s.ep.Addr()))
	m.AddString(ns, elemHops, "0")
	m.Add(ns, elemQuery, payload)
	if err := s.ep.Send(dst, ServiceName, m); err != nil {
		delete(s.pending, qid)
		if p.timer != nil {
			p.timer.Cancel()
		}
		return 0, err
	}
	s.m.queriesSent.Inc()
	return qid, nil
}

// Cancel abandons a pending query; late responses are dropped silently.
func (s *Service) Cancel(qid uint64) {
	s.thaw()
	if p, ok := s.pending[qid]; ok {
		delete(s.pending, qid)
		if p.timer != nil {
			p.timer.Cancel()
		}
	}
}

// Stop abandons every pending query: timeout timers are canceled and
// neither the response nor the timeout callback will fire. Handlers stay
// registered, so a restarted node resumes serving queries immediately.
// Query IDs keep increasing across restarts (late responses to pre-stop
// queries must not be confused with answers to new ones).
func (s *Service) Stop() {
	s.thaw()
	for qid, p := range s.pending {
		if p.timer != nil {
			p.timer.Cancel()
		}
		delete(s.pending, qid)
	}
}

// Respond sends a response for the given query directly to its originator.
// The responder learns the originator's route from the query itself.
func (s *Service) Respond(q *Query, payload []byte) error {
	if q.SrcAddr != "" {
		s.ep.AddRoute(q.Src, q.SrcAddr)
	}
	m := message.New()
	m.AddString(ns, elemHandler, q.Handler)
	m.AddString(ns, elemQID, strconv.FormatUint(q.QID, 10))
	m.AddString(ns, elemHops, strconv.Itoa(q.Hops))
	m.Add(ns, elemResponse, payload)
	if err := s.ep.Send(q.Src, ServiceName, m); err != nil {
		return err
	}
	s.m.responses.Inc()
	return nil
}

// Forward relays the query to another peer, preserving the originator and
// query ID and incrementing the hop count. Handlers use this to route
// queries toward the LC-DHT replica peer or along the walk.
func (s *Service) Forward(q *Query, to ids.ID) error {
	if q.Hops+1 >= MaxHops {
		return nil // poisoned query: drop silently
	}
	m := message.New()
	m.AddString(ns, elemHandler, q.Handler)
	m.AddString(ns, elemQID, strconv.FormatUint(q.QID, 10))
	m.AddString(ns, elemSrc, q.Src.String())
	m.AddString(ns, elemSrcAddr, string(q.SrcAddr))
	m.AddString(ns, elemHops, strconv.Itoa(q.Hops+1))
	m.Add(ns, elemQuery, q.Payload)
	if err := s.ep.Send(to, ServiceName, m); err != nil {
		return err
	}
	s.m.forwards.Inc()
	return nil
}

// HandlerOf reports which resolver handler a wire message addresses (empty
// for non-resolver messages). Used by traffic-classification instrumentation.
func HandlerOf(m *message.Message) string { return m.GetString(ns, elemHandler) }

// receive demultiplexes resolver traffic.
func (s *Service) receive(src ids.ID, m *message.Message) {
	s.thaw()
	qidStr := m.GetString(ns, elemQID)
	qid, err := strconv.ParseUint(qidStr, 10, 64)
	if err != nil {
		return
	}
	if payload, ok := m.Get(ns, elemResponse); ok {
		if p, ok := s.pending[qid]; ok {
			// First response resolves the timeout; later responses still
			// reach the callback (multi-responder queries).
			if p.timer != nil {
				p.timer.Cancel()
				p.timer = nil
			}
			// Hop count echoed by Respond; absent (or malformed) reads as 0
			// so responses from older peers still complete the query.
			hops, err := strconv.Atoi(m.GetString(ns, elemHops))
			if err != nil || hops < 0 {
				hops = 0
			}
			s.m.responsesIn.Inc()
			p.cb(payload, src, hops)
		}
		return
	}
	payload, ok := m.Get(ns, elemQuery)
	if !ok {
		return
	}
	srcID, err := ids.Parse(m.GetString(ns, elemSrc))
	if err != nil {
		return
	}
	hops, err := strconv.Atoi(m.GetString(ns, elemHops))
	if err != nil || hops < 0 || hops >= MaxHops {
		return
	}
	name := m.GetString(ns, elemHandler)
	h, ok := s.handlers[name]
	if !ok {
		return
	}
	s.handlerCounter(name).Inc()
	h(&Query{
		Handler: name,
		QID:     qid,
		Src:     srcID,
		SrcAddr: transport.Addr(m.GetString(ns, elemSrcAddr)),
		Hops:    hops,
		Payload: payload,
	})
}
