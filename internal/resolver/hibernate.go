package resolver

import (
	"jxta/internal/hibpool"
	"jxta/internal/metrics"
)

// Edge hibernation (PR 9): a quiescent resolver (no in-flight local
// queries) packs its handler table and per-handler counter cache into a
// pooled record and releases the map shells. See internal/endpoint for the
// pattern.

type (
	resHandler struct {
		name string
		h    Handler
	}
	resCounter struct {
		name string
		c    *metrics.Counter
	}
)

type resFrozen struct {
	handlers  []resHandler
	byHandler []resCounter
}

var (
	resFrozenPool = hibpool.Records[resFrozen]{Reset: func(f *resFrozen) {
		clear(f.handlers)
		f.handlers = f.handlers[:0]
		clear(f.byHandler)
		f.byHandler = f.byHandler[:0]
	}}
	resHandlersPool hibpool.Maps[string, Handler]
	resCounterPool  hibpool.Maps[string, *metrics.Counter]
	resPendingPool  hibpool.Maps[uint64, *pendingQuery]
)

// Quiescent reports whether the resolver can be frozen: no locally issued
// query is awaiting a response or timeout.
func (s *Service) Quiescent() bool { return len(s.pending) == 0 }

// Freeze packs the resolver's maps into a pooled record. Caller must have
// checked Quiescent. Idempotent.
func (s *Service) Freeze() {
	if s.frozen != nil {
		return
	}
	f := resFrozenPool.Get()
	for name, h := range s.handlers {
		f.handlers = append(f.handlers, resHandler{name: name, h: h})
	}
	for name, c := range s.m.byHandler {
		f.byHandler = append(f.byHandler, resCounter{name: name, c: c})
	}
	resHandlersPool.Put(s.handlers)
	resCounterPool.Put(s.m.byHandler)
	resPendingPool.Put(s.pending)
	s.handlers = nil
	s.m.byHandler = nil
	s.pending = nil
	s.frozen = f
}

// thaw rehydrates a frozen resolver; a single nil check when live.
func (s *Service) thaw() {
	if s.frozen == nil {
		return
	}
	f := s.frozen
	s.frozen = nil
	s.handlers = resHandlersPool.Get()
	for _, h := range f.handlers {
		s.handlers[h.name] = h.h
	}
	s.m.byHandler = resCounterPool.Get()
	for _, c := range f.byHandler {
		s.m.byHandler[c.name] = c.c
	}
	s.pending = resPendingPool.Get()
	resFrozenPool.Put(f)
}

// Frozen reports whether the resolver is currently freeze-dried (tests).
func (s *Service) Frozen() bool { return s.frozen != nil }
