package resolver

import (
	"jxta/internal/metrics"
)

// resMetrics holds the resolver's instruments. Handler-keyed counters
// cache their Vec children (handler names are a small fixed set:
// discovery, SRDI, …) so steady-state increments are lock-free.
type resMetrics struct {
	queriesSent  *metrics.Counter
	queriesRecvd *metrics.CounterVec
	byHandler    map[string]*metrics.Counter
	responses    *metrics.Counter
	responsesIn  *metrics.Counter
	timeouts     *metrics.Counter
	forwards     *metrics.Counter
}

// Instrument (re-)registers the resolver's instruments on reg:
//
//	jxta_resolver_queries_sent_total, jxta_resolver_queries_received_total{handler=...},
//	jxta_resolver_responses_sent_total, jxta_resolver_responses_received_total,
//	jxta_resolver_timeouts_total, jxta_resolver_forwards_total
//
// plus the jxta_resolver_pending gauge (in-flight local queries).
func (s *Service) Instrument(reg *metrics.Registry) {
	s.m = &resMetrics{
		queriesSent:  reg.Counter("jxta_resolver_queries_sent_total", "Queries issued by this peer."),
		queriesRecvd: reg.CounterVec("jxta_resolver_queries_received_total", "Queries dispatched to a local handler.", "handler"),
		byHandler:    make(map[string]*metrics.Counter),
		responses:    reg.Counter("jxta_resolver_responses_sent_total", "Responses sent back to query originators."),
		responsesIn:  reg.Counter("jxta_resolver_responses_received_total", "Responses delivered to local callbacks."),
		timeouts:     reg.Counter("jxta_resolver_timeouts_total", "Local queries that timed out unanswered."),
		forwards:     reg.Counter("jxta_resolver_forwards_total", "Queries forwarded along the walk."),
	}
	reg.GaugeFunc("jxta_resolver_pending", "In-flight locally issued queries.",
		func() float64 { return float64(len(s.pending)) })
}

func (s *Service) handlerCounter(name string) *metrics.Counter {
	if c, ok := s.m.byHandler[name]; ok {
		return c
	}
	c := s.m.queriesRecvd.With(name)
	s.m.byHandler[name] = c
	return c
}
