// Package advertisement implements JXTA advertisements: XML documents
// describing resources (peers, rendezvous peers, routes, pipes, modules,
// generic resources). Advertisements are what the discovery protocol
// publishes and finds; each type declares the attributes by which its
// instances are indexed in the SRDI / LC-DHT (the paper's §3.3 hashes the
// concatenation "type + attribute + value", e.g. "PeerNameTest").
package advertisement

import (
	"errors"
	"fmt"
	"time"

	"jxta/internal/document"
	"jxta/internal/ids"
)

// Default lifetimes from the JXTA 2.x implementations. Lifetime is how long
// the publisher itself considers the advertisement valid; Expiration is the
// remote-cache lifetime attached when the advertisement travels.
const (
	DefaultLifetime   = 365 * 24 * time.Hour
	DefaultExpiration = 2 * time.Hour
)

// IndexField is one (attribute, value) pair by which an advertisement is
// indexed. The discovery protocol publishes these to the rendezvous SRDI.
type IndexField struct {
	Attr  string
	Value string
}

// Key builds the hash input string for the LC-DHT exactly as the paper
// describes: advertisement type, then attribute name, then value
// ("Peer" + "Name" + "Test" -> "PeerNameTest").
func (f IndexField) Key(advType string) string { return advType + f.Attr + f.Value }

// Advertisement is the behaviour common to every advertisement type.
type Advertisement interface {
	// ID returns the identifier of the described resource.
	ID() ids.ID
	// Type returns the short type tag used in index keys ("Peer", "Rdv",
	// "Route", "Pipe", "Module", "Resource").
	Type() string
	// DocType returns the XML document name ("jxta:PA", "jxta:RdvAdv", ...).
	DocType() string
	// IndexFields returns the attributes this advertisement is indexed by.
	IndexFields() []IndexField
	// Document renders the advertisement as a structured document.
	Document() *document.Element
}

// ErrUnknownType reports an advertisement document with no registered codec.
var ErrUnknownType = errors.New("advertisement: unknown advertisement type")

// Decode parses a structured document into a typed advertisement.
func Decode(e *document.Element) (Advertisement, error) {
	switch e.Name {
	case "jxta:PA":
		return decodePeer(e)
	case "jxta:RdvAdvertisement":
		return decodeRdv(e)
	case "jxta:RA":
		return decodeRoute(e)
	case "jxta:PipeAdvertisement":
		return decodePipe(e)
	case "jxta:MIA":
		return decodeModule(e)
	case "jxta:ResourceAdv":
		return decodeResource(e)
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownType, e.Name)
}

// DecodeXML parses raw XML bytes into a typed advertisement.
func DecodeXML(data []byte) (Advertisement, error) {
	e, err := document.Unmarshal(data)
	if err != nil {
		return nil, err
	}
	return Decode(e)
}

// EncodeXML renders an advertisement to XML bytes.
func EncodeXML(a Advertisement) ([]byte, error) { return a.Document().Marshal() }

func parseID(e *document.Element, child string) (ids.ID, error) {
	text := e.ChildText(child)
	if text == "" {
		return ids.Nil, fmt.Errorf("advertisement: <%s> missing <%s>", e.Name, child)
	}
	return ids.Parse(text)
}

// Peer describes a peer: its ID, symbolic name and endpoint addresses.
// Indexed by Name and PID, like JXTA's peer advertisement.
type Peer struct {
	PeerID    ids.ID
	Name      string
	Desc      string
	Addresses []string
}

// ID implements Advertisement.
func (p *Peer) ID() ids.ID { return p.PeerID }

// Type implements Advertisement.
func (p *Peer) Type() string { return "Peer" }

// DocType implements Advertisement.
func (p *Peer) DocType() string { return "jxta:PA" }

// IndexFields implements Advertisement.
func (p *Peer) IndexFields() []IndexField {
	return []IndexField{
		{Attr: "Name", Value: p.Name},
		{Attr: "PID", Value: p.PeerID.String()},
	}
}

// Document implements Advertisement.
func (p *Peer) Document() *document.Element {
	e := document.NewElement("jxta:PA").
		AppendText("PID", p.PeerID.String()).
		AppendText("Name", p.Name)
	if p.Desc != "" {
		e.AppendText("Desc", p.Desc)
	}
	for _, a := range p.Addresses {
		e.AppendText("Addr", a)
	}
	return e
}

func decodePeer(e *document.Element) (*Peer, error) {
	id, err := parseID(e, "PID")
	if err != nil {
		return nil, err
	}
	p := &Peer{PeerID: id, Name: e.ChildText("Name"), Desc: e.ChildText("Desc")}
	e.Each("Addr", func(c *document.Element) { p.Addresses = append(p.Addresses, c.Text) })
	return p, nil
}

// Rdv is a rendezvous advertisement: the payload of peerview probes,
// responses and referrals (§3.2). It names the rendezvous peer, the group it
// serves, and how to reach it.
type Rdv struct {
	PeerID  ids.ID
	GroupID ids.ID
	Name    string
	Address string
}

// ID implements Advertisement.
func (r *Rdv) ID() ids.ID { return r.PeerID }

// Type implements Advertisement.
func (r *Rdv) Type() string { return "Rdv" }

// DocType implements Advertisement.
func (r *Rdv) DocType() string { return "jxta:RdvAdvertisement" }

// IndexFields implements Advertisement.
func (r *Rdv) IndexFields() []IndexField {
	return []IndexField{
		{Attr: "RdvPeerID", Value: r.PeerID.String()},
		{Attr: "RdvGroupId", Value: r.GroupID.String()},
	}
}

// Document implements Advertisement.
func (r *Rdv) Document() *document.Element {
	return document.NewElement("jxta:RdvAdvertisement").
		AppendText("RdvPeerID", r.PeerID.String()).
		AppendText("RdvGroupId", r.GroupID.String()).
		AppendText("Name", r.Name).
		AppendText("Addr", r.Address)
}

func decodeRdv(e *document.Element) (*Rdv, error) {
	pid, err := parseID(e, "RdvPeerID")
	if err != nil {
		return nil, err
	}
	gid, err := parseID(e, "RdvGroupId")
	if err != nil {
		return nil, err
	}
	return &Rdv{PeerID: pid, GroupID: gid, Name: e.ChildText("Name"), Address: e.ChildText("Addr")}, nil
}

// Route is an endpoint-routing-protocol route advertisement: destination
// peer plus an ordered hop list.
type Route struct {
	DestID ids.ID
	Hops   []ids.ID
}

// ID implements Advertisement.
func (r *Route) ID() ids.ID { return r.DestID }

// Type implements Advertisement.
func (r *Route) Type() string { return "Route" }

// DocType implements Advertisement.
func (r *Route) DocType() string { return "jxta:RA" }

// IndexFields implements Advertisement.
func (r *Route) IndexFields() []IndexField {
	return []IndexField{{Attr: "DstPID", Value: r.DestID.String()}}
}

// Document implements Advertisement.
func (r *Route) Document() *document.Element {
	e := document.NewElement("jxta:RA").AppendText("DstPID", r.DestID.String())
	for _, h := range r.Hops {
		e.AppendText("Hop", h.String())
	}
	return e
}

func decodeRoute(e *document.Element) (*Route, error) {
	id, err := parseID(e, "DstPID")
	if err != nil {
		return nil, err
	}
	r := &Route{DestID: id}
	var decodeErr error
	e.Each("Hop", func(c *document.Element) {
		h, err := ids.Parse(c.Text)
		if err != nil {
			decodeErr = err
			return
		}
		r.Hops = append(r.Hops, h)
	})
	return r, decodeErr
}

// Pipe describes a communication pipe (unidirectional channel abstraction).
type Pipe struct {
	PipeID ids.ID
	Name   string
	Kind   string // "JxtaUnicast" or "JxtaPropagate"
}

// ID implements Advertisement.
func (p *Pipe) ID() ids.ID { return p.PipeID }

// Type implements Advertisement.
func (p *Pipe) Type() string { return "Pipe" }

// DocType implements Advertisement.
func (p *Pipe) DocType() string { return "jxta:PipeAdvertisement" }

// IndexFields implements Advertisement.
func (p *Pipe) IndexFields() []IndexField {
	return []IndexField{
		{Attr: "Name", Value: p.Name},
		{Attr: "Id", Value: p.PipeID.String()},
	}
}

// Document implements Advertisement.
func (p *Pipe) Document() *document.Element {
	return document.NewElement("jxta:PipeAdvertisement").
		AppendText("Id", p.PipeID.String()).
		AppendText("Name", p.Name).
		AppendText("Type", p.Kind)
}

func decodePipe(e *document.Element) (*Pipe, error) {
	id, err := parseID(e, "Id")
	if err != nil {
		return nil, err
	}
	return &Pipe{PipeID: id, Name: e.ChildText("Name"), Kind: e.ChildText("Type")}, nil
}

// Module describes a module implementation (a service a group provides).
type Module struct {
	ModuleID ids.ID
	Name     string
	Desc     string
}

// ID implements Advertisement.
func (m *Module) ID() ids.ID { return m.ModuleID }

// Type implements Advertisement.
func (m *Module) Type() string { return "Module" }

// DocType implements Advertisement.
func (m *Module) DocType() string { return "jxta:MIA" }

// IndexFields implements Advertisement.
func (m *Module) IndexFields() []IndexField {
	return []IndexField{{Attr: "Name", Value: m.Name}}
}

// Document implements Advertisement.
func (m *Module) Document() *document.Element {
	e := document.NewElement("jxta:MIA").
		AppendText("MSID", m.ModuleID.String()).
		AppendText("Name", m.Name)
	if m.Desc != "" {
		e.AppendText("Desc", m.Desc)
	}
	return e
}

func decodeModule(e *document.Element) (*Module, error) {
	id, err := parseID(e, "MSID")
	if err != nil {
		return nil, err
	}
	return &Module{ModuleID: id, Name: e.ChildText("Name"), Desc: e.ChildText("Desc")}, nil
}

// Resource is a generic application advertisement with free-form indexed
// attributes. The paper's "fake advertisements" published by noiser peers and
// the grid-resource use case both map onto it.
type Resource struct {
	ResID ids.ID
	Name  string
	Attrs []IndexField // additional indexed attributes beyond Name
}

// ID implements Advertisement.
func (r *Resource) ID() ids.ID { return r.ResID }

// Type implements Advertisement.
func (r *Resource) Type() string { return "Resource" }

// DocType implements Advertisement.
func (r *Resource) DocType() string { return "jxta:ResourceAdv" }

// IndexFields implements Advertisement.
func (r *Resource) IndexFields() []IndexField {
	fields := []IndexField{{Attr: "Name", Value: r.Name}}
	return append(fields, r.Attrs...)
}

// Document implements Advertisement.
func (r *Resource) Document() *document.Element {
	e := document.NewElement("jxta:ResourceAdv").
		AppendText("Id", r.ResID.String()).
		AppendText("Name", r.Name)
	for _, f := range r.Attrs {
		e.Append(document.NewElement("Attr").
			WithAttr("name", f.Attr).
			WithText(f.Value))
	}
	return e
}

func decodeResource(e *document.Element) (*Resource, error) {
	id, err := parseID(e, "Id")
	if err != nil {
		return nil, err
	}
	r := &Resource{ResID: id, Name: e.ChildText("Name")}
	e.Each("Attr", func(c *document.Element) {
		name, _ := c.Attr("name")
		r.Attrs = append(r.Attrs, IndexField{Attr: name, Value: c.Text})
	})
	return r, nil
}

// Compile-time interface checks.
var (
	_ Advertisement = (*Peer)(nil)
	_ Advertisement = (*Rdv)(nil)
	_ Advertisement = (*Route)(nil)
	_ Advertisement = (*Pipe)(nil)
	_ Advertisement = (*Module)(nil)
	_ Advertisement = (*Resource)(nil)
)
