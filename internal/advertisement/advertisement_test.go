package advertisement

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"jxta/internal/ids"
)

func rng() *rand.Rand { return rand.New(rand.NewSource(1)) }

func TestIndexFieldKeyMatchesPaper(t *testing.T) {
	// §3.3: hash input is type + attribute + value, "PeerNameTest".
	f := IndexField{Attr: "Name", Value: "Test"}
	if got := f.Key("Peer"); got != "PeerNameTest" {
		t.Fatalf("Key = %q, want PeerNameTest", got)
	}
}

func TestPeerRoundTrip(t *testing.T) {
	r := rng()
	p := &Peer{
		PeerID:    ids.NewRandom(ids.KindPeer, r),
		Name:      "Test",
		Desc:      "a peer",
		Addresses: []string{"tcp://1.2.3.4:9701", "sim://rennes/3"},
	}
	data, err := EncodeXML(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeXML(data)
	if err != nil {
		t.Fatal(err)
	}
	bp, ok := back.(*Peer)
	if !ok {
		t.Fatalf("decoded type %T", back)
	}
	if !bp.PeerID.Equal(p.PeerID) || bp.Name != p.Name || bp.Desc != p.Desc {
		t.Fatalf("fields changed: %+v vs %+v", bp, p)
	}
	if len(bp.Addresses) != 2 || bp.Addresses[1] != "sim://rennes/3" {
		t.Fatalf("addresses changed: %v", bp.Addresses)
	}
}

func TestRdvRoundTrip(t *testing.T) {
	r := rng()
	adv := &Rdv{
		PeerID:  ids.NewRandom(ids.KindPeer, r),
		GroupID: ids.FromName(ids.KindGroup, "NetPeerGroup"),
		Name:    "rdv-rennes-1",
		Address: "sim://rennes/1",
	}
	data, err := EncodeXML(adv)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeXML(data)
	if err != nil {
		t.Fatal(err)
	}
	b := back.(*Rdv)
	if !b.PeerID.Equal(adv.PeerID) || !b.GroupID.Equal(adv.GroupID) ||
		b.Name != adv.Name || b.Address != adv.Address {
		t.Fatalf("round trip changed: %+v vs %+v", b, adv)
	}
}

func TestRouteRoundTrip(t *testing.T) {
	r := rng()
	adv := &Route{
		DestID: ids.NewRandom(ids.KindPeer, r),
		Hops:   []ids.ID{ids.NewRandom(ids.KindPeer, r), ids.NewRandom(ids.KindPeer, r)},
	}
	data, _ := EncodeXML(adv)
	back, err := DecodeXML(data)
	if err != nil {
		t.Fatal(err)
	}
	b := back.(*Route)
	if !b.DestID.Equal(adv.DestID) || len(b.Hops) != 2 ||
		!b.Hops[0].Equal(adv.Hops[0]) || !b.Hops[1].Equal(adv.Hops[1]) {
		t.Fatalf("round trip changed: %+v", b)
	}
}

func TestRouteBadHop(t *testing.T) {
	xml := `<jxta:RA><DstPID>` + ids.FromName(ids.KindPeer, "d").String() +
		`</DstPID><Hop>garbage</Hop></jxta:RA>`
	if _, err := DecodeXML([]byte(xml)); err == nil {
		t.Fatal("bad hop accepted")
	}
}

func TestPipeRoundTrip(t *testing.T) {
	adv := &Pipe{PipeID: ids.FromName(ids.KindPipe, "p"), Name: "chat", Kind: "JxtaUnicast"}
	data, _ := EncodeXML(adv)
	back, err := DecodeXML(data)
	if err != nil {
		t.Fatal(err)
	}
	b := back.(*Pipe)
	if !b.PipeID.Equal(adv.PipeID) || b.Name != "chat" || b.Kind != "JxtaUnicast" {
		t.Fatalf("round trip changed: %+v", b)
	}
}

func TestModuleRoundTrip(t *testing.T) {
	adv := &Module{ModuleID: ids.FromName(ids.KindModule, "m"), Name: "disco", Desc: "svc"}
	data, _ := EncodeXML(adv)
	back, err := DecodeXML(data)
	if err != nil {
		t.Fatal(err)
	}
	b := back.(*Module)
	if !b.ModuleID.Equal(adv.ModuleID) || b.Name != "disco" || b.Desc != "svc" {
		t.Fatalf("round trip changed: %+v", b)
	}
}

func TestResourceRoundTrip(t *testing.T) {
	adv := &Resource{
		ResID: ids.FromName(ids.KindAdv, "res"),
		Name:  "node42",
		Attrs: []IndexField{{Attr: "CPU", Value: "opteron-2.2"}, {Attr: "RAM", Value: "4096"}},
	}
	data, _ := EncodeXML(adv)
	back, err := DecodeXML(data)
	if err != nil {
		t.Fatal(err)
	}
	b := back.(*Resource)
	if b.Name != "node42" || len(b.Attrs) != 2 || b.Attrs[0] != adv.Attrs[0] || b.Attrs[1] != adv.Attrs[1] {
		t.Fatalf("round trip changed: %+v", b)
	}
}

func TestIndexFields(t *testing.T) {
	r := rng()
	peer := &Peer{PeerID: ids.NewRandom(ids.KindPeer, r), Name: "Test"}
	fields := peer.IndexFields()
	if len(fields) != 2 || fields[0].Attr != "Name" || fields[0].Value != "Test" {
		t.Fatalf("peer index fields: %v", fields)
	}
	res := &Resource{ResID: ids.NewRandom(ids.KindAdv, r), Name: "n",
		Attrs: []IndexField{{Attr: "Site", Value: "rennes"}}}
	rf := res.IndexFields()
	if len(rf) != 2 || rf[1].Attr != "Site" {
		t.Fatalf("resource index fields: %v", rf)
	}
}

func TestDecodeUnknownType(t *testing.T) {
	if _, err := DecodeXML([]byte("<jxta:Mystery><A>x</A></jxta:Mystery>")); err == nil {
		t.Fatal("unknown advertisement accepted")
	}
}

func TestDecodeMissingID(t *testing.T) {
	cases := []string{
		"<jxta:PA><Name>n</Name></jxta:PA>",
		"<jxta:RdvAdvertisement><Name>n</Name></jxta:RdvAdvertisement>",
		"<jxta:RA></jxta:RA>",
		"<jxta:PipeAdvertisement><Name>n</Name></jxta:PipeAdvertisement>",
		"<jxta:MIA><Name>n</Name></jxta:MIA>",
		"<jxta:ResourceAdv><Name>n</Name></jxta:ResourceAdv>",
	}
	for _, xml := range cases {
		if _, err := DecodeXML([]byte(xml)); err == nil {
			t.Errorf("missing ID accepted: %s", xml)
		}
	}
}

func TestDecodeBadXML(t *testing.T) {
	if _, err := DecodeXML([]byte("<<<")); err == nil {
		t.Fatal("bad XML accepted")
	}
}

func TestRdvMissingGroup(t *testing.T) {
	xml := `<jxta:RdvAdvertisement><RdvPeerID>` +
		ids.FromName(ids.KindPeer, "p").String() +
		`</RdvPeerID></jxta:RdvAdvertisement>`
	if _, err := DecodeXML([]byte(xml)); err == nil {
		t.Fatal("missing group accepted")
	}
}

func TestTypeTags(t *testing.T) {
	r := rng()
	cases := []struct {
		adv     Advertisement
		typ     string
		docType string
	}{
		{&Peer{PeerID: ids.NewRandom(ids.KindPeer, r)}, "Peer", "jxta:PA"},
		{&Rdv{PeerID: ids.NewRandom(ids.KindPeer, r)}, "Rdv", "jxta:RdvAdvertisement"},
		{&Route{DestID: ids.NewRandom(ids.KindPeer, r)}, "Route", "jxta:RA"},
		{&Pipe{PipeID: ids.NewRandom(ids.KindPipe, r)}, "Pipe", "jxta:PipeAdvertisement"},
		{&Module{ModuleID: ids.NewRandom(ids.KindModule, r)}, "Module", "jxta:MIA"},
		{&Resource{ResID: ids.NewRandom(ids.KindAdv, r)}, "Resource", "jxta:ResourceAdv"},
	}
	for _, c := range cases {
		if c.adv.Type() != c.typ {
			t.Errorf("%T.Type() = %q, want %q", c.adv, c.adv.Type(), c.typ)
		}
		if c.adv.DocType() != c.docType {
			t.Errorf("%T.DocType() = %q, want %q", c.adv, c.adv.DocType(), c.docType)
		}
		if c.adv.Document().Name != c.docType {
			t.Errorf("%T document name mismatch", c.adv)
		}
	}
}

// Property: every generated Resource round-trips through XML.
func TestResourceRoundTripProperty(t *testing.T) {
	clean := func(s string) string {
		s = strings.Map(func(r rune) rune {
			if r < 0x20 || r > 0x7e {
				return 'x'
			}
			return r
		}, s)
		return strings.TrimSpace(s)
	}
	f := func(seed int64, name, a1, v1, a2, v2 string) bool {
		r := rand.New(rand.NewSource(seed))
		adv := &Resource{
			ResID: ids.NewRandom(ids.KindAdv, r),
			Name:  clean(name),
			Attrs: []IndexField{
				{Attr: "k" + clean(a1), Value: clean(v1)},
				{Attr: "k" + clean(a2), Value: clean(v2)},
			},
		}
		data, err := EncodeXML(adv)
		if err != nil {
			return false
		}
		back, err := DecodeXML(data)
		if err != nil {
			return false
		}
		b, ok := back.(*Resource)
		if !ok || b.Name != adv.Name || len(b.Attrs) != len(adv.Attrs) {
			return false
		}
		for i := range b.Attrs {
			if b.Attrs[i] != adv.Attrs[i] {
				return false
			}
		}
		return b.ResID.Equal(adv.ResID)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodePeer(b *testing.B) {
	p := &Peer{PeerID: ids.FromName(ids.KindPeer, "p"), Name: "Test",
		Addresses: []string{"tcp://1.2.3.4:9701"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeXML(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeRdv(b *testing.B) {
	adv := &Rdv{PeerID: ids.FromName(ids.KindPeer, "p"),
		GroupID: ids.FromName(ids.KindGroup, "g"), Name: "r", Address: "sim://x/1"}
	data, _ := EncodeXML(adv)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeXML(data); err != nil {
			b.Fatal(err)
		}
	}
}
