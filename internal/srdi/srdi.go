// Package srdi implements the Shared Resource Distributed Index: the tuple
// store rendezvous peers keep for the LC-DHT (§3.3). Edge peers publish
// attribute tables — tuples (index attribute, value) with a life duration
// and the identity of the publishing peer — to their rendezvous; rendezvous
// peers keep a copy and replicate each tuple to the replica peer computed by
// hashing the tuple over the local peerview.
package srdi

import (
	"sort"
	"time"

	"jxta/internal/env"
	"jxta/internal/ids"
	"jxta/internal/transport"
)

// Tuple is one published index entry.
type Tuple struct {
	// Key is the hash input "Type+Attr+Value" (e.g. "PeerNameTest").
	Key string
	// Publisher is the peer holding the advertisement.
	Publisher ids.ID
	// PublisherAddr lets any rendezvous forward queries to the publisher
	// without a prior route.
	PublisherAddr transport.Addr
	// Lifetime bounds the entry's validity at the index.
	Lifetime time.Duration
	// NumAttr/NumValue carry the optional numeric tier registration: when
	// NumAttr ("Type+Attr") is non-empty the tuple's value is an integer
	// NumValue, range-searchable via RangePublishers.
	NumAttr  string
	NumValue int64
}

// entryInfo tracks one publisher's registration under a key. The numeric
// tier registration that arrived on the same tuple (if any) is remembered
// so Tuples can reconstruct complete tuples for a lease-state handoff.
type entryInfo struct {
	addr     transport.Addr
	expires  time.Duration // absolute env time; 0 = never
	numAttr  string
	numValue int64
}

// pubEntry is one publisher's registration in a key's posting list.
type pubEntry struct {
	pub ids.ID
	entryInfo
}

// numericEntry is one publisher's numeric registration under an attribute.
type numericEntry struct {
	pub     ids.ID
	value   int64
	addr    transport.Addr
	expires time.Duration
}

// Index is a rendezvous peer's SRDI store. Not safe for concurrent use
// (env serialization covers it). Besides the exact-match tier the LC-DHT
// hashes over, it keeps a numeric tier supporting the range queries the
// paper's conclusion lists as future work ("the mechanisms used by JXTA-C
// to address complex queries, such as range queries").
//
// Both tiers keep per-key posting lists as slices sorted by publisher ID
// rather than maps: an LC-DHT key embeds the indexed value, so almost
// every key has exactly one publisher, and a one-element slice costs a
// tenth of a one-element map — the difference between a rendezvous
// carrying 100k edges fitting in RAM or not.
type Index struct {
	env     env.Env
	entries map[string][]pubEntry
	// numeric maps "Type+Attr" to per-publisher numeric values.
	numeric map[string][]numericEntry
	size    int
}

// New builds an empty index.
func New(e env.Env) *Index {
	return &Index{
		env:     e,
		entries: make(map[string][]pubEntry),
		numeric: make(map[string][]numericEntry),
	}
}

// Size returns the total number of (key, publisher) registrations — the
// quantity the simulated per-query scan cost scales with (JXTA-C scans its
// SRDI linearly).
func (x *Index) Size() int { return x.size }

// Add registers a tuple, replacing any previous registration by the same
// publisher under the same key.
func (x *Index) Add(t Tuple) {
	var expires time.Duration
	if t.Lifetime > 0 {
		expires = x.env.Now() + t.Lifetime
	}
	info := entryInfo{
		addr: t.PublisherAddr, expires: expires,
		numAttr: t.NumAttr, numValue: t.NumValue,
	}
	lst := x.entries[t.Key]
	i := sort.Search(len(lst), func(i int) bool { return !lst[i].pub.Less(t.Publisher) })
	if i < len(lst) && lst[i].pub == t.Publisher {
		lst[i].entryInfo = info
		return
	}
	lst = append(lst, pubEntry{})
	copy(lst[i+1:], lst[i:])
	lst[i] = pubEntry{pub: t.Publisher, entryInfo: info}
	x.entries[t.Key] = lst
	x.size++
}

// Tuples exports every fresh registration as a complete tuple with its
// *remaining* lifetime, sorted by (key, publisher) — the payload a
// gracefully stopping rendezvous hands to its successor so the index
// survives the transition. Re-adding the returned tuples on another peer
// reproduces both the exact-match and the numeric tier.
func (x *Index) Tuples() []Tuple {
	now := x.env.Now()
	keys := make([]string, 0, len(x.entries))
	for key := range x.entries {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	var out []Tuple
	for _, key := range keys {
		// Posting lists are kept sorted by publisher, so the export order
		// (key, publisher) needs no per-key sort.
		for _, e := range x.entries[key] {
			if e.expires > 0 && e.expires <= now {
				continue
			}
			var remaining time.Duration
			if e.expires > 0 {
				remaining = e.expires - now
			}
			out = append(out, Tuple{
				Key: key, Publisher: e.pub, PublisherAddr: e.addr,
				Lifetime: remaining,
				NumAttr:  e.numAttr, NumValue: e.numValue,
			})
		}
	}
	return out
}

// Publishers returns the fresh publishers registered under key, with their
// addresses, in ascending publisher-ID order. The set is assembled from a
// map, so without the sort the order — and with it the sequence of query
// forwards and ultimately the presentation order of merged discovery
// responses — would vary run to run (the seed's last nondeterminism).
func (x *Index) Publishers(key string) []Tuple {
	lst, ok := x.entries[key]
	if !ok {
		return nil
	}
	now := x.env.Now()
	var out []Tuple
	for _, e := range lst {
		if e.expires > 0 && e.expires <= now {
			continue
		}
		out = append(out, Tuple{Key: key, Publisher: e.pub, PublisherAddr: e.addr})
	}
	return out
}

// Has reports whether at least one fresh publisher exists for key.
func (x *Index) Has(key string) bool { return len(x.Publishers(key)) > 0 }

// RemovePublisher drops every registration by a publisher (peer departure).
func (x *Index) RemovePublisher(pub ids.ID) {
	for key, lst := range x.entries {
		i := sort.Search(len(lst), func(i int) bool { return !lst[i].pub.Less(pub) })
		if i >= len(lst) || lst[i].pub != pub {
			continue
		}
		lst = append(lst[:i], lst[i+1:]...)
		x.size--
		if len(lst) == 0 {
			delete(x.entries, key)
		} else {
			x.entries[key] = lst
		}
	}
	for key, lst := range x.numeric {
		i := sort.Search(len(lst), func(i int) bool { return !lst[i].pub.Less(pub) })
		if i >= len(lst) || lst[i].pub != pub {
			continue
		}
		lst = append(lst[:i], lst[i+1:]...)
		if len(lst) == 0 {
			delete(x.numeric, key)
		} else {
			x.numeric[key] = lst
		}
	}
}

// GC evicts expired registrations and returns how many were removed.
func (x *Index) GC() int {
	now := x.env.Now()
	evicted := 0
	for key, lst := range x.entries {
		kept := lst[:0]
		for _, e := range lst {
			if e.expires > 0 && e.expires <= now {
				x.size--
				evicted++
				continue
			}
			kept = append(kept, e)
		}
		if len(kept) == 0 {
			delete(x.entries, key)
		} else {
			x.entries[key] = kept
		}
	}
	for key, lst := range x.numeric {
		kept := lst[:0]
		for _, e := range lst {
			if e.expires > 0 && e.expires <= now {
				evicted++
				continue
			}
			kept = append(kept, e)
		}
		if len(kept) == 0 {
			delete(x.numeric, key)
		} else {
			x.numeric[key] = kept
		}
	}
	return evicted
}

// Keys returns the number of distinct keys (diagnostics).
func (x *Index) Keys() int { return len(x.entries) }

// AddNumeric registers a publisher's numeric value under "Type+Attr".
// Replaces any previous registration by the same publisher.
func (x *Index) AddNumeric(typeAttr string, value int64, pub ids.ID, addr transport.Addr, lifetime time.Duration) {
	var expires time.Duration
	if lifetime > 0 {
		expires = x.env.Now() + lifetime
	}
	lst := x.numeric[typeAttr]
	i := sort.Search(len(lst), func(i int) bool { return !lst[i].pub.Less(pub) })
	if i < len(lst) && lst[i].pub == pub {
		lst[i] = numericEntry{pub: pub, value: value, addr: addr, expires: expires}
		return
	}
	lst = append(lst, numericEntry{})
	copy(lst[i+1:], lst[i:])
	lst[i] = numericEntry{pub: pub, value: value, addr: addr, expires: expires}
	x.numeric[typeAttr] = lst
}

// RangePublishers returns the fresh publishers whose registered value under
// "Type+Attr" lies in [lo, hi].
func (x *Index) RangePublishers(typeAttr string, lo, hi int64) []Tuple {
	lst, ok := x.numeric[typeAttr]
	if !ok {
		return nil
	}
	now := x.env.Now()
	var out []Tuple
	for _, e := range lst {
		if e.expires > 0 && e.expires <= now {
			continue
		}
		if e.value < lo || e.value > hi {
			continue
		}
		out = append(out, Tuple{Key: typeAttr, Publisher: e.pub, PublisherAddr: e.addr})
	}
	return out
}
