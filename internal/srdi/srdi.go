// Package srdi implements the Shared Resource Distributed Index: the tuple
// store rendezvous peers keep for the LC-DHT (§3.3). Edge peers publish
// attribute tables — tuples (index attribute, value) with a life duration
// and the identity of the publishing peer — to their rendezvous; rendezvous
// peers keep a copy and replicate each tuple to the replica peer computed by
// hashing the tuple over the local peerview.
package srdi

import (
	"sort"
	"time"

	"jxta/internal/env"
	"jxta/internal/ids"
	"jxta/internal/transport"
)

// Tuple is one published index entry.
type Tuple struct {
	// Key is the hash input "Type+Attr+Value" (e.g. "PeerNameTest").
	Key string
	// Publisher is the peer holding the advertisement.
	Publisher ids.ID
	// PublisherAddr lets any rendezvous forward queries to the publisher
	// without a prior route.
	PublisherAddr transport.Addr
	// Lifetime bounds the entry's validity at the index.
	Lifetime time.Duration
	// NumAttr/NumValue carry the optional numeric tier registration: when
	// NumAttr ("Type+Attr") is non-empty the tuple's value is an integer
	// NumValue, range-searchable via RangePublishers.
	NumAttr  string
	NumValue int64
}

// entryInfo tracks one publisher's registration under a key. The numeric
// tier registration that arrived on the same tuple (if any) is remembered
// so Tuples can reconstruct complete tuples for a lease-state handoff.
type entryInfo struct {
	addr     transport.Addr
	expires  time.Duration // absolute env time; 0 = never
	numAttr  string
	numValue int64
}

// numericEntry is one publisher's numeric registration under an attribute.
type numericEntry struct {
	value   int64
	addr    transport.Addr
	expires time.Duration
}

// Index is a rendezvous peer's SRDI store. Not safe for concurrent use
// (env serialization covers it). Besides the exact-match tier the LC-DHT
// hashes over, it keeps a numeric tier supporting the range queries the
// paper's conclusion lists as future work ("the mechanisms used by JXTA-C
// to address complex queries, such as range queries").
type Index struct {
	env     env.Env
	entries map[string]map[ids.ID]entryInfo
	// numeric maps "Type+Attr" to per-publisher numeric values.
	numeric map[string]map[ids.ID]numericEntry
	size    int
}

// New builds an empty index.
func New(e env.Env) *Index {
	return &Index{
		env:     e,
		entries: make(map[string]map[ids.ID]entryInfo),
		numeric: make(map[string]map[ids.ID]numericEntry),
	}
}

// Size returns the total number of (key, publisher) registrations — the
// quantity the simulated per-query scan cost scales with (JXTA-C scans its
// SRDI linearly).
func (x *Index) Size() int { return x.size }

// Add registers a tuple, replacing any previous registration by the same
// publisher under the same key.
func (x *Index) Add(t Tuple) {
	set, ok := x.entries[t.Key]
	if !ok {
		set = make(map[ids.ID]entryInfo)
		x.entries[t.Key] = set
	}
	if _, exists := set[t.Publisher]; !exists {
		x.size++
	}
	var expires time.Duration
	if t.Lifetime > 0 {
		expires = x.env.Now() + t.Lifetime
	}
	set[t.Publisher] = entryInfo{
		addr: t.PublisherAddr, expires: expires,
		numAttr: t.NumAttr, numValue: t.NumValue,
	}
}

// Tuples exports every fresh registration as a complete tuple with its
// *remaining* lifetime, sorted by (key, publisher) — the payload a
// gracefully stopping rendezvous hands to its successor so the index
// survives the transition. Re-adding the returned tuples on another peer
// reproduces both the exact-match and the numeric tier.
func (x *Index) Tuples() []Tuple {
	now := x.env.Now()
	keys := make([]string, 0, len(x.entries))
	for key := range x.entries {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	var out []Tuple
	for _, key := range keys {
		set := x.entries[key]
		tuples := make([]Tuple, 0, len(set))
		for pub, info := range set {
			if info.expires > 0 && info.expires <= now {
				continue
			}
			var remaining time.Duration
			if info.expires > 0 {
				remaining = info.expires - now
			}
			tuples = append(tuples, Tuple{
				Key: key, Publisher: pub, PublisherAddr: info.addr,
				Lifetime: remaining,
				NumAttr:  info.numAttr, NumValue: info.numValue,
			})
		}
		sortTuples(tuples)
		out = append(out, tuples...)
	}
	return out
}

// Publishers returns the fresh publishers registered under key, with their
// addresses, in ascending publisher-ID order. The set is assembled from a
// map, so without the sort the order — and with it the sequence of query
// forwards and ultimately the presentation order of merged discovery
// responses — would vary run to run (the seed's last nondeterminism).
func (x *Index) Publishers(key string) []Tuple {
	set, ok := x.entries[key]
	if !ok {
		return nil
	}
	now := x.env.Now()
	var out []Tuple
	for pub, info := range set {
		if info.expires > 0 && info.expires <= now {
			continue
		}
		out = append(out, Tuple{Key: key, Publisher: pub, PublisherAddr: info.addr})
	}
	sortTuples(out)
	return out
}

// sortTuples orders tuples by publisher ID (stable total order).
func sortTuples(ts []Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Publisher.Less(ts[j].Publisher) })
}

// Has reports whether at least one fresh publisher exists for key.
func (x *Index) Has(key string) bool { return len(x.Publishers(key)) > 0 }

// RemovePublisher drops every registration by a publisher (peer departure).
func (x *Index) RemovePublisher(pub ids.ID) {
	for key, set := range x.entries {
		if _, ok := set[pub]; ok {
			delete(set, pub)
			x.size--
			if len(set) == 0 {
				delete(x.entries, key)
			}
		}
	}
	for key, set := range x.numeric {
		delete(set, pub)
		if len(set) == 0 {
			delete(x.numeric, key)
		}
	}
}

// GC evicts expired registrations and returns how many were removed.
func (x *Index) GC() int {
	now := x.env.Now()
	evicted := 0
	for key, set := range x.entries {
		for pub, info := range set {
			if info.expires > 0 && info.expires <= now {
				delete(set, pub)
				x.size--
				evicted++
			}
		}
		if len(set) == 0 {
			delete(x.entries, key)
		}
	}
	for key, set := range x.numeric {
		for pub, e := range set {
			if e.expires > 0 && e.expires <= now {
				delete(set, pub)
				evicted++
			}
		}
		if len(set) == 0 {
			delete(x.numeric, key)
		}
	}
	return evicted
}

// Keys returns the number of distinct keys (diagnostics).
func (x *Index) Keys() int { return len(x.entries) }

// AddNumeric registers a publisher's numeric value under "Type+Attr".
// Replaces any previous registration by the same publisher.
func (x *Index) AddNumeric(typeAttr string, value int64, pub ids.ID, addr transport.Addr, lifetime time.Duration) {
	set, ok := x.numeric[typeAttr]
	if !ok {
		set = make(map[ids.ID]numericEntry)
		x.numeric[typeAttr] = set
	}
	var expires time.Duration
	if lifetime > 0 {
		expires = x.env.Now() + lifetime
	}
	set[pub] = numericEntry{value: value, addr: addr, expires: expires}
}

// RangePublishers returns the fresh publishers whose registered value under
// "Type+Attr" lies in [lo, hi].
func (x *Index) RangePublishers(typeAttr string, lo, hi int64) []Tuple {
	set, ok := x.numeric[typeAttr]
	if !ok {
		return nil
	}
	now := x.env.Now()
	var out []Tuple
	for pub, e := range set {
		if e.expires > 0 && e.expires <= now {
			continue
		}
		if e.value < lo || e.value > hi {
			continue
		}
		out = append(out, Tuple{Key: typeAttr, Publisher: pub, PublisherAddr: e.addr})
	}
	sortTuples(out)
	return out
}
