package srdi

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"jxta/internal/ids"
	"jxta/internal/simnet"
	"jxta/internal/transport"
)

func newIndex() (*Index, *simnet.Scheduler) {
	sched := simnet.NewScheduler(1)
	return New(sched.NewEnv("rdv")), sched
}

func tup(key, pub string, life time.Duration) Tuple {
	return Tuple{
		Key:           key,
		Publisher:     ids.FromName(ids.KindPeer, pub),
		PublisherAddr: transport.Addr("sim://rennes/" + pub),
		Lifetime:      life,
	}
}

func TestAddLookup(t *testing.T) {
	x, _ := newIndex()
	x.Add(tup("PeerNameTest", "e1", 0))
	if !x.Has("PeerNameTest") {
		t.Fatal("key not found")
	}
	pubs := x.Publishers("PeerNameTest")
	if len(pubs) != 1 || !pubs[0].Publisher.Equal(ids.FromName(ids.KindPeer, "e1")) {
		t.Fatalf("Publishers = %v", pubs)
	}
	if pubs[0].PublisherAddr != "sim://rennes/e1" {
		t.Fatal("address lost")
	}
	if x.Has("Nope") {
		t.Fatal("bogus key found")
	}
	if x.Size() != 1 || x.Keys() != 1 {
		t.Fatalf("Size=%d Keys=%d", x.Size(), x.Keys())
	}
}

func TestMultiplePublishersSameKey(t *testing.T) {
	x, _ := newIndex()
	x.Add(tup("k", "e1", 0))
	x.Add(tup("k", "e2", 0))
	if got := len(x.Publishers("k")); got != 2 {
		t.Fatalf("publishers = %d, want 2", got)
	}
	if x.Size() != 2 || x.Keys() != 1 {
		t.Fatalf("Size=%d Keys=%d", x.Size(), x.Keys())
	}
}

func TestReAddRefreshesNotDuplicates(t *testing.T) {
	x, sched := newIndex()
	x.Add(tup("k", "e1", time.Minute))
	sched.Run(45 * time.Second)
	x.Add(tup("k", "e1", time.Minute)) // refresh
	if x.Size() != 1 {
		t.Fatalf("Size = %d after re-add", x.Size())
	}
	sched.Run(90 * time.Second) // 45s after refresh: still alive
	if !x.Has("k") {
		t.Fatal("refreshed entry expired early")
	}
}

func TestExpiry(t *testing.T) {
	x, sched := newIndex()
	x.Add(tup("k", "e1", time.Minute))
	x.Add(tup("k", "e2", 0)) // immortal
	sched.Run(2 * time.Minute)
	pubs := x.Publishers("k")
	if len(pubs) != 1 || !pubs[0].Publisher.Equal(ids.FromName(ids.KindPeer, "e2")) {
		t.Fatalf("expired publisher still returned: %v", pubs)
	}
	if n := x.GC(); n != 1 {
		t.Fatalf("GC evicted %d, want 1", n)
	}
	if x.Size() != 1 {
		t.Fatalf("Size = %d after GC", x.Size())
	}
}

func TestGCRemovesEmptyKeys(t *testing.T) {
	x, sched := newIndex()
	x.Add(tup("k", "e1", time.Second))
	sched.Run(time.Minute)
	x.GC()
	if x.Keys() != 0 {
		t.Fatal("empty key survived GC")
	}
}

func TestRemovePublisher(t *testing.T) {
	x, _ := newIndex()
	x.Add(tup("k1", "e1", 0))
	x.Add(tup("k2", "e1", 0))
	x.Add(tup("k1", "e2", 0))
	x.RemovePublisher(ids.FromName(ids.KindPeer, "e1"))
	if x.Has("k2") {
		t.Fatal("k2 should be gone with its only publisher")
	}
	if got := len(x.Publishers("k1")); got != 1 {
		t.Fatalf("k1 publishers = %d, want 1", got)
	}
	if x.Size() != 1 {
		t.Fatalf("Size = %d", x.Size())
	}
}

// Property: Size always equals the sum of live registrations.
func TestSizeInvariantProperty(t *testing.T) {
	f := func(seed int64, ops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		x, _ := newIndex()
		truth := map[string]map[string]bool{}
		count := 0
		for i := 0; i < int(ops); i++ {
			key := fmt.Sprintf("k%d", rng.Intn(4))
			pub := fmt.Sprintf("p%d", rng.Intn(4))
			if rng.Intn(4) == 0 {
				x.RemovePublisher(ids.FromName(ids.KindPeer, pub))
				for _, set := range truth {
					if set[pub] {
						delete(set, pub)
						count--
					}
				}
			} else {
				x.Add(tup(key, pub, 0))
				if truth[key] == nil {
					truth[key] = map[string]bool{}
				}
				if !truth[key][pub] {
					truth[key][pub] = true
					count++
				}
			}
		}
		return x.Size() == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookup5000(b *testing.B) {
	sched := simnet.NewScheduler(1)
	x := New(sched.NewEnv("rdv"))
	for i := 0; i < 5000; i++ {
		x.Add(tup(fmt.Sprintf("ResourceNamefake%d", i), fmt.Sprintf("e%d", i%50), 0))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Publishers("ResourceNamefake2500")
	}
}

func TestNumericTier(t *testing.T) {
	x, sched := newIndex()
	pubA := ids.FromName(ids.KindPeer, "a")
	pubB := ids.FromName(ids.KindPeer, "b")
	x.AddNumeric("ResourceRAM", 2048, pubA, "sim://rennes/a", 0)
	x.AddNumeric("ResourceRAM", 4096, pubB, "sim://rennes/b", time.Minute)

	in := x.RangePublishers("ResourceRAM", 2000, 5000)
	if len(in) != 2 {
		t.Fatalf("range [2000,5000] = %d publishers, want 2", len(in))
	}
	lo := x.RangePublishers("ResourceRAM", 0, 2048)
	if len(lo) != 1 || !lo[0].Publisher.Equal(pubA) {
		t.Fatalf("inclusive upper bound wrong: %v", lo)
	}
	if got := x.RangePublishers("ResourceRAM", 5000, 9000); len(got) != 0 {
		t.Fatalf("empty range matched %v", got)
	}
	if got := x.RangePublishers("ResourceCPU", 0, 1<<40); len(got) != 0 {
		t.Fatal("wrong attribute matched")
	}
	// Expiry applies.
	sched.Run(2 * time.Minute)
	if got := x.RangePublishers("ResourceRAM", 0, 1<<40); len(got) != 1 {
		t.Fatalf("expired numeric entry still served: %v", got)
	}
	if x.GC() == 0 {
		t.Fatal("GC missed the expired numeric entry")
	}
}

func TestNumericReplaceAndRemovePublisher(t *testing.T) {
	x, _ := newIndex()
	pub := ids.FromName(ids.KindPeer, "a")
	x.AddNumeric("ResourceRAM", 1024, pub, "sim://rennes/a", 0)
	x.AddNumeric("ResourceRAM", 8192, pub, "sim://rennes/a", 0) // replaces
	if got := x.RangePublishers("ResourceRAM", 0, 2000); len(got) != 0 {
		t.Fatal("stale numeric value survived replacement")
	}
	if got := x.RangePublishers("ResourceRAM", 8000, 9000); len(got) != 1 {
		t.Fatal("replacement value missing")
	}
	x.RemovePublisher(pub)
	if got := x.RangePublishers("ResourceRAM", 0, 1<<40); len(got) != 0 {
		t.Fatal("RemovePublisher missed the numeric tier")
	}
}

func TestTuplesExportRoundTrip(t *testing.T) {
	x, sched := newIndex()
	a := tup("PeerNameA", "pub-a", time.Hour)
	b := tup("PeerNameB", "pub-b", 0) // never expires
	c := tup("ResourceSize", "pub-c", time.Hour)
	c.NumAttr = "ResourceSize"
	c.NumValue = 42
	gone := tup("PeerNameGone", "pub-d", time.Minute)
	for _, tpl := range []Tuple{a, b, c, gone} {
		x.Add(tpl)
		if tpl.NumAttr != "" {
			x.AddNumeric(tpl.NumAttr, tpl.NumValue, tpl.Publisher, tpl.PublisherAddr, tpl.Lifetime)
		}
	}
	sched.Run(30 * time.Minute) // 'gone' expires, the rest keep half their life

	exported := x.Tuples()
	if len(exported) != 3 {
		t.Fatalf("exported %d tuples, want 3 (expired one excluded)", len(exported))
	}
	// Sorted by key, then publisher.
	for i := 1; i < len(exported); i++ {
		if exported[i-1].Key > exported[i].Key {
			t.Fatal("export not sorted by key")
		}
	}
	// Re-adding on a successor index reproduces both tiers.
	succSched := simnet.NewScheduler(2)
	succ := New(succSched.NewEnv("succ"))
	for _, tpl := range exported {
		succ.Add(tpl)
		if tpl.NumAttr != "" {
			succ.AddNumeric(tpl.NumAttr, tpl.NumValue, tpl.Publisher, tpl.PublisherAddr, tpl.Lifetime)
		}
	}
	if !succ.Has("PeerNameA") || !succ.Has("PeerNameB") {
		t.Fatal("successor index misses handed-off keys")
	}
	if succ.Has("PeerNameGone") {
		t.Fatal("successor index resurrected an expired tuple")
	}
	if got := succ.RangePublishers("ResourceSize", 40, 50); len(got) != 1 {
		t.Fatalf("numeric tier not reconstructed: %d matches", len(got))
	}
	// Remaining lifetime carried over: tuple a had 1h, 30 min elapsed.
	for _, tpl := range exported {
		if tpl.Key == "PeerNameA" && tpl.Lifetime != 30*time.Minute {
			t.Fatalf("remaining lifetime = %v, want 30m", tpl.Lifetime)
		}
		if tpl.Key == "PeerNameB" && tpl.Lifetime != 0 {
			t.Fatalf("never-expiring tuple exported lifetime %v", tpl.Lifetime)
		}
	}
}
