// Package lifecycle defines the Start/Stop contract every JXTA service in
// this stack honors, and the ordered registry a node uses to drive them.
//
// The contract:
//
//   - Start begins the service's periodic work (tickers, leases). Calling
//     Start on a started service is a no-op.
//   - Stop halts the service: every timer it armed through its env is
//     canceled, in-flight work is flushed or aborted, and the service stays
//     restartable — a later Start resumes from the retained configuration.
//     Calling Stop on a stopped service is a no-op.
//
// Services are registered in dependency order (transport-nearest first);
// Registry.Start runs them in that order and Registry.Stop in reverse, so a
// layer never outlives the layers it sends through. The registry is what
// makes node teardown leak-free and provable: after Stop, the simulation
// scheduler's per-node pending-callback count (simnet.Scheduler.PendingFor)
// must be zero, which the facade regression tests assert.
package lifecycle

// Service is the uniform start/stop surface of one protocol layer.
type Service interface {
	// Start begins periodic work. Idempotent.
	Start()
	// Stop cancels all timers and halts the service, leaving it
	// restartable. Idempotent.
	Stop()
}

// Aborter is the optional crash-path extension of Service: Abort tears the
// service down like Stop but without sending anything on the network (no
// FIN, no lease cancel), modeling a process crash. Services without an
// Abort are silent on Stop already; the registry falls back to Stop for
// them.
type Aborter interface {
	Abort()
}

// Funcs adapts bare functions to the Service interface for layers that have
// no periodic work of their own (endpoint, resolver, pipe, socket — their
// Start is implicit in construction). Nil fields are no-ops; a nil AbortFn
// falls back to StopFn.
type Funcs struct {
	StartFn func()
	StopFn  func()
	AbortFn func()
}

// Start implements Service.
func (f Funcs) Start() {
	if f.StartFn != nil {
		f.StartFn()
	}
}

// Stop implements Service.
func (f Funcs) Stop() {
	if f.StopFn != nil {
		f.StopFn()
	}
}

// Abort implements Aborter, falling back to Stop when no AbortFn is set.
func (f Funcs) Abort() {
	if f.AbortFn != nil {
		f.AbortFn()
		return
	}
	f.Stop()
}

// Registry drives an ordered set of services as one unit.
type Registry struct {
	services []Service
	started  bool
}

// Add appends a service. Registration order is start order; stop runs in
// reverse.
func (r *Registry) Add(s Service) {
	r.services = append(r.services, s)
}

// Insert places a service at position i of the start order (clamped to the
// current bounds), shifting later services down. It is the role-switch
// primitive: a node promoting itself to rendezvous splices the peerview
// service into its existing stack at the exact position a
// constructed-as-rendezvous node would have it, so teardown order stays
// correct. If the registry is already started, the new service starts
// immediately (the node is live; its new layer must be too).
func (r *Registry) Insert(i int, s Service) {
	if i < 0 {
		i = 0
	}
	if i > len(r.services) {
		i = len(r.services)
	}
	r.services = append(r.services, nil)
	copy(r.services[i+1:], r.services[i:])
	r.services[i] = s
	if r.started {
		s.Start()
	}
}

// Started reports whether the registry is currently up.
func (r *Registry) Started() bool { return r.started }

// Start brings every service up in registration order. Idempotent.
func (r *Registry) Start() {
	if r.started {
		return
	}
	r.started = true
	for _, s := range r.services {
		s.Start()
	}
}

// Stop tears every service down in reverse registration order. Idempotent.
func (r *Registry) Stop() {
	if !r.started {
		return
	}
	r.started = false
	for i := len(r.services) - 1; i >= 0; i-- {
		r.services[i].Stop()
	}
}

// Abort tears every service down in reverse registration order through the
// crash path: services implementing Aborter abort (silent teardown), the
// rest Stop. Idempotent, like Stop.
func (r *Registry) Abort() {
	if !r.started {
		return
	}
	r.started = false
	for i := len(r.services) - 1; i >= 0; i-- {
		if a, ok := r.services[i].(Aborter); ok {
			a.Abort()
			continue
		}
		r.services[i].Stop()
	}
}
