package lifecycle

import (
	"reflect"
	"testing"
)

// recorder logs start/stop calls into a shared trace.
type recorder struct {
	name  string
	trace *[]string
}

func (r recorder) Start() { *r.trace = append(*r.trace, "start:"+r.name) }
func (r recorder) Stop()  { *r.trace = append(*r.trace, "stop:"+r.name) }

func TestRegistryOrder(t *testing.T) {
	var trace []string
	reg := &Registry{}
	reg.Add(recorder{"a", &trace})
	reg.Add(recorder{"b", &trace})
	reg.Add(recorder{"c", &trace})

	reg.Start()
	reg.Stop()
	want := []string{"start:a", "start:b", "start:c", "stop:c", "stop:b", "stop:a"}
	if !reflect.DeepEqual(trace, want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	var trace []string
	reg := &Registry{}
	reg.Add(recorder{"a", &trace})

	reg.Stop() // stop before start: no-op
	reg.Start()
	reg.Start()
	reg.Stop()
	reg.Stop()
	reg.Start() // restartable
	want := []string{"start:a", "stop:a", "start:a"}
	if !reflect.DeepEqual(trace, want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	if !reg.Started() {
		t.Fatal("Started() = false after Start")
	}
}

func TestRegistryInsert(t *testing.T) {
	var trace []string
	reg := &Registry{}
	reg.Add(recorder{"a", &trace})
	reg.Add(recorder{"c", &trace})

	// Insert into a stopped registry: no Start, but the order is fixed.
	reg.Insert(1, recorder{"b", &trace})
	reg.Start()
	reg.Stop()
	want := []string{"start:a", "start:b", "start:c", "stop:c", "stop:b", "stop:a"}
	if !reflect.DeepEqual(trace, want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}

	// Insert into a running registry: the service starts immediately and
	// stops in its splice position.
	trace = nil
	reg.Start()
	reg.Insert(1, recorder{"mid", &trace})
	reg.Insert(-5, recorder{"front", &trace}) // clamped indices
	reg.Insert(99, recorder{"back", &trace})
	reg.Stop()
	want = []string{
		"start:a", "start:b", "start:c",
		"start:mid", "start:front", "start:back",
		"stop:back", "stop:c", "stop:b", "stop:mid", "stop:a", "stop:front",
	}
	if !reflect.DeepEqual(trace, want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
}

// aborter is a recorder with a distinct crash path.
type aborter struct{ recorder }

func (a aborter) Abort() { *a.trace = append(*a.trace, "abort:"+a.name) }

func TestRegistryAbort(t *testing.T) {
	var trace []string
	reg := &Registry{}
	reg.Add(recorder{"a", &trace})          // no Abort: falls back to Stop
	reg.Add(aborter{recorder{"b", &trace}}) // crash-path aware

	reg.Abort() // before start: no-op
	reg.Start()
	reg.Abort()
	reg.Abort() // idempotent
	reg.Start() // restartable after a crash
	want := []string{"start:a", "start:b", "abort:b", "stop:a", "start:a", "start:b"}
	if !reflect.DeepEqual(trace, want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
}

func TestFuncsAbortFallback(t *testing.T) {
	var trace []string
	f := Funcs{StopFn: func() { trace = append(trace, "stop") }}
	f.Abort() // no AbortFn: falls back to StopFn
	g := Funcs{
		StopFn:  func() { trace = append(trace, "stop2") },
		AbortFn: func() { trace = append(trace, "abort2") },
	}
	g.Abort()
	want := []string{"stop", "abort2"}
	if !reflect.DeepEqual(trace, want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
}

func TestFuncsNilSafe(t *testing.T) {
	var started bool
	reg := &Registry{}
	reg.Add(Funcs{StartFn: func() { started = true }}) // nil StopFn
	reg.Add(Funcs{})                                   // fully nil
	reg.Start()
	reg.Stop()
	if !started {
		t.Fatal("StartFn not invoked")
	}
}
