package ids

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindPeer:   "peer",
		KindGroup:  "group",
		KindAdv:    "adv",
		KindPipe:   "pipe",
		KindModule: "module",
		KindQuery:  "query",
		Kind(99):   "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestNewRandomDeterministic(t *testing.T) {
	a := NewRandom(KindPeer, rand.New(rand.NewSource(7)))
	b := NewRandom(KindPeer, rand.New(rand.NewSource(7)))
	if !a.Equal(b) {
		t.Fatalf("same seed produced different IDs: %s vs %s", a, b)
	}
	c := NewRandom(KindPeer, rand.New(rand.NewSource(8)))
	if a.Equal(c) {
		t.Fatalf("different seeds produced identical IDs: %s", a)
	}
}

func TestNewRandomPanicsOnNilRNG(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRandom(nil) did not panic")
		}
	}()
	NewRandom(KindPeer, nil)
}

func TestNewRandomSetsUUIDBits(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		id := NewRandom(KindAdv, rng)
		u := id.Bytes()
		if u[6]&0xf0 != 0x40 {
			t.Fatalf("version nibble not 4: %x", u[6])
		}
		if u[8]&0xc0 != 0x80 {
			t.Fatalf("variant bits not RFC4122: %x", u[8])
		}
	}
}

func TestFromNameStable(t *testing.T) {
	a := FromName(KindGroup, "NetPeerGroup")
	b := FromName(KindGroup, "NetPeerGroup")
	if !a.Equal(b) {
		t.Fatal("FromName is not stable")
	}
	if a.Equal(FromName(KindGroup, "OtherGroup")) {
		t.Fatal("distinct names collided")
	}
	if a.Equal(FromName(KindPeer, "NetPeerGroup")) {
		t.Fatal("distinct kinds collided for the same name")
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	kinds := []Kind{KindPeer, KindGroup, KindAdv, KindPipe, KindModule, KindQuery}
	for _, k := range kinds {
		id := NewRandom(k, rng)
		back, err := Parse(id.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", id.String(), err)
		}
		if !back.Equal(id) {
			t.Fatalf("round trip changed ID: %s -> %s", id, back)
		}
	}
	// Nil round-trips too.
	back, err := Parse(Nil.String())
	if err != nil || !back.IsNil() {
		t.Fatalf("nil round trip: %v %v", back, err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"uuid-abcd",
		"urn:jxta:uuid-zzzz-peer",
		"urn:jxta:uuid-abcd-peer",           // too short
		"urn:jxta:uuid-" + h32() + "-bogus", // unknown kind
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func h32() string {
	const hexDigits = "0123456789abcdef"
	b := make([]byte, 32)
	for i := range b {
		b[i] = hexDigits[i%16]
	}
	return string(b)
}

func TestParsePlainFormDefaultsToPeer(t *testing.T) {
	id, err := Parse("urn:jxta:uuid-" + h32())
	if err != nil {
		t.Fatal(err)
	}
	if id.Kind() != KindPeer {
		t.Fatalf("plain form kind = %v, want peer", id.Kind())
	}
}

func TestMarshalTextRoundTrip(t *testing.T) {
	id := FromName(KindPipe, "pipe-x")
	text, err := id.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var back ID
	if err := back.UnmarshalText(text); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(id) {
		t.Fatalf("text round trip changed ID")
	}
}

func TestCompareTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	idsList := make([]ID, 200)
	for i := range idsList {
		idsList[i] = NewRandom(KindPeer, rng)
	}
	SortIDs(idsList)
	if !sort.SliceIsSorted(idsList, func(i, j int) bool { return idsList[i].Less(idsList[j]) }) {
		t.Fatal("SortIDs did not sort")
	}
	for i := 1; i < len(idsList); i++ {
		if idsList[i].Less(idsList[i-1]) {
			t.Fatal("order violated")
		}
	}
}

func TestSortIDsSmall(t *testing.T) {
	for n := 0; n < 15; n++ {
		rng := rand.New(rand.NewSource(int64(n)))
		s := make([]ID, n)
		for i := range s {
			s[i] = NewRandom(KindPeer, rng)
		}
		SortIDs(s)
		if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i].Less(s[j]) }) {
			t.Fatalf("n=%d: not sorted", n)
		}
	}
}

// Property: Compare is antisymmetric and consistent with Equal.
func TestCompareProperties(t *testing.T) {
	f := func(a, b [16]byte, ka, kb uint8) bool {
		ia := New(Kind(ka%6+1), a)
		ib := New(Kind(kb%6+1), b)
		c1, c2 := ia.Compare(ib), ib.Compare(ia)
		if c1 != -c2 {
			return false
		}
		return (c1 == 0) == ia.Equal(ib)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Parse(String(id)) is the identity.
func TestRoundTripProperty(t *testing.T) {
	f := func(u [16]byte, k uint8) bool {
		id := New(Kind(k%6+1), u)
		back, err := Parse(id.String())
		return err == nil && back.Equal(id)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: sorting is idempotent and a permutation.
func TestSortProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := make([]ID, int(n%64))
		for i := range s {
			s[i] = NewRandom(KindPeer, rng)
		}
		count := map[ID]int{}
		for _, id := range s {
			count[id]++
		}
		SortIDs(s)
		if !sort.SliceIsSorted(s, func(i, j int) bool { return s[i].Less(s[j]) }) {
			return false
		}
		for _, id := range s {
			count[id]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHash64(t *testing.T) {
	if Hash64("PeerNameTest") != Hash64("PeerNameTest") {
		t.Fatal("Hash64 not deterministic")
	}
	if Hash64("a") == Hash64("b") {
		t.Fatal("trivial collision")
	}
}

func TestShort(t *testing.T) {
	if Nil.Short() != "nil" {
		t.Fatalf("Nil.Short() = %q", Nil.Short())
	}
	id := FromName(KindPeer, "x")
	if len(id.Short()) != 8 {
		t.Fatalf("Short() length = %d, want 8", len(id.Short()))
	}
}

func BenchmarkSortIDs(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base := make([]ID, 580)
	for i := range base {
		base[i] = NewRandom(KindPeer, rng)
	}
	s := make([]ID, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(s, base)
		SortIDs(s)
	}
}

func BenchmarkHash64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Hash64("PeerNameTest")
	}
}
