// Package ids implements JXTA-style identifiers.
//
// JXTA identifies every abstraction (peers, peer groups, advertisements,
// pipes, module classes) with a UUID-derived URN of the form
//
//	urn:jxta:uuid-<hex>
//
// The peerview protocol keeps rendezvous peers in a list ordered by peer ID,
// and the LC-DHT replica function maps SHA-1 hashes onto positions of that
// ordered list, so IDs must provide a stable total order and hashing helpers.
package ids

import (
	"bytes"
	"crypto/sha1"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"strings"
)

// Kind distinguishes the JXTA ID namespaces.
type Kind byte

const (
	// KindPeer identifies a peer.
	KindPeer Kind = iota + 1
	// KindGroup identifies a peer group.
	KindGroup
	// KindAdv identifies an advertisement instance.
	KindAdv
	// KindPipe identifies a pipe.
	KindPipe
	// KindModule identifies a module class.
	KindModule
	// KindQuery identifies a resolver query.
	KindQuery
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindPeer:
		return "peer"
	case KindGroup:
		return "group"
	case KindAdv:
		return "adv"
	case KindPipe:
		return "pipe"
	case KindModule:
		return "module"
	case KindQuery:
		return "query"
	}
	return fmt.Sprintf("kind(%d)", byte(k))
}

// valid reports whether the kind is one of the defined namespaces.
func (k Kind) valid() bool { return k >= KindPeer && k <= KindQuery }

// ID is a JXTA identifier: a kind tag plus a 16-byte UUID payload.
// The zero value is the nil ID.
type ID struct {
	kind Kind
	uuid [16]byte
}

// Nil is the zero ID. It is not a member of any namespace.
var Nil ID

// ErrBadID reports a malformed textual ID.
var ErrBadID = errors.New("ids: malformed JXTA ID")

// New builds an ID of the given kind from a 16-byte payload.
func New(kind Kind, uuid [16]byte) ID { return ID{kind: kind, uuid: uuid} }

// NewRandom draws a fresh ID of the given kind from rng. Experiments use
// per-node seeded generators so that overlays are reproducible; passing a nil
// rng panics rather than silently falling back to a global source.
func NewRandom(kind Kind, rng *rand.Rand) ID {
	if rng == nil {
		panic("ids: NewRandom requires a seeded *rand.Rand")
	}
	var u [16]byte
	binary.BigEndian.PutUint64(u[0:8], rng.Uint64())
	binary.BigEndian.PutUint64(u[8:16], rng.Uint64())
	// Set UUID version (4) and variant bits like RFC 4122 so that the
	// textual form looks like a genuine JXTA UUID URN.
	u[6] = (u[6] & 0x0f) | 0x40
	u[8] = (u[8] & 0x3f) | 0x80
	return ID{kind: kind, uuid: u}
}

// FromName derives a stable ID of the given kind from a human-readable name
// (SHA-1 based, like JXTA's well-known group IDs).
func FromName(kind Kind, name string) ID {
	sum := sha1.Sum([]byte(string(rune(kind)) + ":" + name))
	var u [16]byte
	copy(u[:], sum[:16])
	return ID{kind: kind, uuid: u}
}

// Kind returns the ID namespace.
func (id ID) Kind() Kind { return id.kind }

// IsNil reports whether the ID is the zero ID.
func (id ID) IsNil() bool { return id == Nil }

// Bytes returns the 16-byte UUID payload.
func (id ID) Bytes() [16]byte { return id.uuid }

// Compare orders IDs first by UUID payload, then by kind. The peerview
// protocol relies on this order being total and stable.
func (id ID) Compare(other ID) int {
	if c := bytes.Compare(id.uuid[:], other.uuid[:]); c != 0 {
		return c
	}
	switch {
	case id.kind < other.kind:
		return -1
	case id.kind > other.kind:
		return 1
	}
	return 0
}

// Less reports whether id orders strictly before other.
func (id ID) Less(other ID) bool { return id.Compare(other) < 0 }

// Equal reports whether two IDs are identical.
func (id ID) Equal(other ID) bool { return id == other }

// String renders the canonical URN form, e.g.
// "urn:jxta:uuid-5B7D…-peer". The kind suffix is a readability extension;
// Parse accepts both suffixed and plain forms.
func (id ID) String() string {
	if id.IsNil() {
		return "urn:jxta:nil"
	}
	// Built in one allocation: IDs are stringified on every message
	// construction, so this is a simulation hot path.
	const prefix = "urn:jxta:uuid-"
	suffix := id.kind.String()
	var b strings.Builder
	b.Grow(len(prefix) + 32 + 1 + len(suffix))
	b.WriteString(prefix)
	var h [32]byte
	hex.Encode(h[:], id.uuid[:])
	b.Write(h[:])
	b.WriteByte('-')
	b.WriteString(suffix)
	return b.String()
}

// Short returns an abbreviated form (first 8 hex digits) for logs and plots.
func (id ID) Short() string {
	if id.IsNil() {
		return "nil"
	}
	return hex.EncodeToString(id.uuid[:4])
}

// Parse decodes the canonical URN form produced by String.
func Parse(s string) (ID, error) {
	if s == "urn:jxta:nil" {
		return Nil, nil
	}
	const prefix = "urn:jxta:uuid-"
	if !strings.HasPrefix(s, prefix) {
		return Nil, fmt.Errorf("%w: %q lacks %q prefix", ErrBadID, s, prefix)
	}
	rest := s[len(prefix):]
	hexPart := rest
	kind := Kind(0)
	if i := strings.IndexByte(rest, '-'); i >= 0 {
		hexPart = rest[:i]
		switch rest[i+1:] {
		case "peer":
			kind = KindPeer
		case "group":
			kind = KindGroup
		case "adv":
			kind = KindAdv
		case "pipe":
			kind = KindPipe
		case "module":
			kind = KindModule
		case "query":
			kind = KindQuery
		default:
			return Nil, fmt.Errorf("%w: unknown kind suffix %q", ErrBadID, rest[i+1:])
		}
	}
	var u [16]byte
	if !decodeHex32(&u, hexPart) {
		return Nil, fmt.Errorf("%w: bad uuid payload in %q", ErrBadID, s)
	}
	if kind == 0 {
		kind = KindPeer // plain form defaults to the peer namespace
	}
	return ID{kind: kind, uuid: u}, nil
}

// decodeHex32 decodes exactly 32 hex digits into u without allocating.
func decodeHex32(u *[16]byte, s string) bool {
	if len(s) != 32 {
		return false
	}
	for i := 0; i < 16; i++ {
		hi, ok1 := unhex(s[2*i])
		lo, ok2 := unhex(s[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		u[i] = hi<<4 | lo
	}
	return true
}

func unhex(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// MarshalText implements encoding.TextMarshaler.
func (id ID) MarshalText() ([]byte, error) { return []byte(id.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (id *ID) UnmarshalText(text []byte) error {
	parsed, err := Parse(string(text))
	if err != nil {
		return err
	}
	*id = parsed
	return nil
}

// Hash64 returns the first 8 bytes (big endian) of the SHA-1 digest of s.
// The LC-DHT replica function uses this as the hash whose range is
// MAX_HASH = 2^64-1 (see discovery.ReplicaPos).
func Hash64(s string) uint64 {
	sum := sha1.Sum([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// SortIDs sorts a slice of IDs in ascending Compare order, in place.
func SortIDs(s []ID) {
	// Insertion sort is fine for the small peerview slices this serves,
	// but views can reach hundreds of entries, so use a simple quicksort
	// via the comparison order.
	sortIDs(s)
}

func sortIDs(s []ID) {
	if len(s) < 12 {
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j].Less(s[j-1]); j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		return
	}
	pivot := s[len(s)/2]
	left, right := 0, len(s)-1
	for left <= right {
		for s[left].Less(pivot) {
			left++
		}
		for pivot.Less(s[right]) {
			right--
		}
		if left <= right {
			s[left], s[right] = s[right], s[left]
			left++
			right--
		}
	}
	sortIDs(s[:right+1])
	sortIDs(s[left:])
}
