package rendezvous

import (
	"fmt"
	"testing"
	"time"

	"jxta/internal/advertisement"
	"jxta/internal/endpoint"
	"jxta/internal/ids"
	"jxta/internal/message"
	"jxta/internal/netmodel"
	"jxta/internal/peerview"
	"jxta/internal/simnet"
	"jxta/internal/transport"
)

var testGroup = ids.FromName(ids.KindGroup, "NetPeerGroup")

type rdvPeer struct {
	id  ids.ID
	ep  *endpoint.Endpoint
	pv  *peerview.PeerView
	svc *Service
	tr  *transport.Sim
}

type edgePeer struct {
	id  ids.ID
	ep  *endpoint.Endpoint
	svc *Service
	tr  *transport.Sim
}

// newRdvOverlay builds n rendezvous peers (chain seeds) with running
// peerviews and rendezvous services.
func newRdvOverlay(t *testing.T, sched *simnet.Scheduler, net *transport.Network, n int) []*rdvPeer {
	t.Helper()
	peers := make([]*rdvPeer, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("rdv%d", i)
		e := sched.NewEnv(name)
		tr, err := net.Attach(name, netmodel.Site(i%netmodel.NumSites))
		if err != nil {
			t.Fatal(err)
		}
		id := ids.NewRandom(ids.KindPeer, e.Rand())
		adv := &advertisement.Rdv{PeerID: id, GroupID: testGroup, Name: name,
			Address: string(tr.Addr())}
		ep := endpoint.New(e, id, tr)
		var seeds []peerview.Seed
		if i > 0 {
			seeds = []peerview.Seed{{ID: peers[i-1].id, Addr: peers[i-1].tr.Addr()}}
		}
		pv := peerview.New(e, ep, adv, peerview.DefaultConfig(), seeds)
		svc := NewRendezvous(e, ep, pv, DefaultConfig())
		peers[i] = &rdvPeer{id: id, ep: ep, pv: pv, svc: svc, tr: tr}
		pv.Start()
		svc.Start()
	}
	return peers
}

func newEdge(t *testing.T, sched *simnet.Scheduler, net *transport.Network, name string, seeds []peerview.Seed, cfg Config) *edgePeer {
	t.Helper()
	e := sched.NewEnv(name)
	tr, err := net.Attach(name, netmodel.Site(0))
	if err != nil {
		t.Fatal(err)
	}
	id := ids.NewRandom(ids.KindPeer, e.Rand())
	ep := endpoint.New(e, id, tr)
	svc := NewEdge(e, ep, seeds, cfg)
	return &edgePeer{id: id, ep: ep, svc: svc, tr: tr}
}

func TestDirectionString(t *testing.T) {
	if Up.String() != "up" || Down.String() != "down" {
		t.Fatal("direction strings wrong")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg != DefaultConfig() {
		t.Fatalf("withDefaults = %+v", cfg)
	}
	odd := Config{LeaseDuration: time.Minute, RenewFraction: 1.5, ResponseTimeout: time.Second}
	got := odd.withDefaults()
	if got.RenewFraction != 0.5 {
		t.Fatal("out-of-range RenewFraction not defaulted")
	}
	if got.LeaseDuration != time.Minute {
		t.Fatal("valid LeaseDuration overwritten")
	}
}

func TestEdgeAcquiresLease(t *testing.T) {
	sched := simnet.NewScheduler(1)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	rdvs := newRdvOverlay(t, sched, net, 1)
	edge := newEdge(t, sched, net, "edge0",
		[]peerview.Seed{{ID: rdvs[0].id, Addr: rdvs[0].tr.Addr()}}, DefaultConfig())
	var events []bool
	edge.svc.AddLeaseListener(func(rdv ids.ID, connected bool) {
		if !rdv.Equal(rdvs[0].id) {
			t.Errorf("lease event about wrong rdv")
		}
		events = append(events, connected)
	})
	edge.svc.Start()
	sched.Run(time.Minute)
	if got, ok := edge.svc.ConnectedRdv(); !ok || !got.Equal(rdvs[0].id) {
		t.Fatal("edge not connected to its rendezvous")
	}
	if !rdvs[0].svc.HasClient(edge.id) {
		t.Fatal("rendezvous does not list the edge as client")
	}
	if len(events) != 1 || !events[0] {
		t.Fatalf("lease events = %v", events)
	}
}

func TestLeaseRenewalKeepsClientAlive(t *testing.T) {
	sched := simnet.NewScheduler(2)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	rdvs := newRdvOverlay(t, sched, net, 1)
	cfg := Config{LeaseDuration: 2 * time.Minute}
	edge := newEdge(t, sched, net, "edge0",
		[]peerview.Seed{{ID: rdvs[0].id, Addr: rdvs[0].tr.Addr()}}, cfg)
	edge.svc.Start()
	// Run far past several lease durations: renewals must keep the client.
	sched.Run(20 * time.Minute)
	if !rdvs[0].svc.HasClient(edge.id) {
		t.Fatal("client lapsed despite renewals")
	}
}

func TestEdgeFailoverToSecondSeed(t *testing.T) {
	sched := simnet.NewScheduler(3)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	rdvs := newRdvOverlay(t, sched, net, 2)
	seeds := []peerview.Seed{
		{ID: rdvs[0].id, Addr: rdvs[0].tr.Addr()},
		{ID: rdvs[1].id, Addr: rdvs[1].tr.Addr()},
	}
	cfg := Config{LeaseDuration: 2 * time.Minute, ResponseTimeout: 10 * time.Second}
	edge := newEdge(t, sched, net, "edge0", seeds, cfg)
	edge.svc.Start()
	sched.Run(time.Minute)
	if got, _ := edge.svc.ConnectedRdv(); !got.Equal(rdvs[0].id) {
		t.Fatal("edge did not connect to first seed")
	}
	// Kill rdv0: renewals fail, edge must fail over to rdv1.
	rdvs[0].pv.Stop()
	rdvs[0].svc.Stop()
	rdvs[0].tr.Close()
	sched.Run(20 * time.Minute)
	got, ok := edge.svc.ConnectedRdv()
	if !ok || !got.Equal(rdvs[1].id) {
		t.Fatalf("edge did not fail over: connected=%v to %s", ok, got.Short())
	}
}

func TestEdgeStopCancelsLease(t *testing.T) {
	sched := simnet.NewScheduler(4)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	rdvs := newRdvOverlay(t, sched, net, 1)
	edge := newEdge(t, sched, net, "edge0",
		[]peerview.Seed{{ID: rdvs[0].id, Addr: rdvs[0].tr.Addr()}}, DefaultConfig())
	edge.svc.Start()
	sched.Run(time.Minute)
	edge.svc.Stop()
	sched.Run(2 * time.Minute)
	if rdvs[0].svc.HasClient(edge.id) {
		t.Fatal("lease survived explicit cancel")
	}
	if _, ok := edge.svc.ConnectedRdv(); ok {
		t.Fatal("edge still connected after Stop")
	}
}

func TestClientSweepExpiresSilentEdges(t *testing.T) {
	sched := simnet.NewScheduler(5)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	rdvs := newRdvOverlay(t, sched, net, 1)
	cfg := Config{LeaseDuration: 2 * time.Minute}
	edge := newEdge(t, sched, net, "edge0",
		[]peerview.Seed{{ID: rdvs[0].id, Addr: rdvs[0].tr.Addr()}}, cfg)
	edge.svc.Start()
	sched.Run(time.Minute)
	// Edge dies without cancelling.
	edge.svc.cancelTimers()
	edge.svc.started = false
	edge.tr.Close()
	sched.Run(30 * time.Minute)
	if rdvs[0].svc.HasClient(edge.id) {
		t.Fatal("dead edge's lease never swept")
	}
	if len(rdvs[0].svc.Clients()) != 0 {
		t.Fatal("clients list not empty")
	}
}

func TestEdgesDoNotGrantLeases(t *testing.T) {
	sched := simnet.NewScheduler(6)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	e1 := newEdge(t, sched, net, "e1", nil, DefaultConfig())
	e2 := newEdge(t, sched, net, "e2",
		[]peerview.Seed{{ID: e1.id, Addr: e1.tr.Addr()}}, DefaultConfig())
	e2.svc.Start()
	sched.Run(5 * time.Minute)
	if _, ok := e2.svc.ConnectedRdv(); ok {
		t.Fatal("edge obtained a lease from another edge")
	}
}

func TestWalkVisitsPeersInOrder(t *testing.T) {
	sched := simnet.NewScheduler(7)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	rdvs := newRdvOverlay(t, sched, net, 6)
	sched.Run(10 * time.Minute) // converge peerviews

	// Global ID order.
	order := make([]ids.ID, len(rdvs))
	byID := map[ids.ID]*rdvPeer{}
	for i, p := range rdvs {
		order[i] = p.id
		byID[p.id] = p
	}
	ids.SortIDs(order)

	var visited []ids.ID
	for _, p := range rdvs {
		p := p
		p.svc.SetWalkHandler("svc", func(origin ids.ID, dir Direction, body *message.Message) bool {
			visited = append(visited, p.id)
			return false
		})
	}
	// Walk up from the lowest peer: must visit the rest in ascending order.
	src := byID[order[0]]
	src.svc.Walk(Up, 10, "svc", message.New().AddString("x", "y", "z"))
	sched.Run(sched.Now() + time.Minute)
	if len(visited) != len(rdvs)-1 {
		t.Fatalf("walk visited %d peers, want %d", len(visited), len(rdvs)-1)
	}
	for i, id := range visited {
		if !id.Equal(order[i+1]) {
			t.Fatalf("walk order wrong at %d", i)
		}
	}
}

func TestWalkTTLBounds(t *testing.T) {
	sched := simnet.NewScheduler(8)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	rdvs := newRdvOverlay(t, sched, net, 8)
	sched.Run(10 * time.Minute)
	order := make([]ids.ID, len(rdvs))
	byID := map[ids.ID]*rdvPeer{}
	for i, p := range rdvs {
		order[i] = p.id
		byID[p.id] = p
	}
	ids.SortIDs(order)
	count := 0
	for _, p := range rdvs {
		p.svc.SetWalkHandler("svc", func(ids.ID, Direction, *message.Message) bool {
			count++
			return false
		})
	}
	byID[order[0]].svc.Walk(Up, 3, "svc", message.New())
	sched.Run(sched.Now() + time.Minute)
	if count != 3 {
		t.Fatalf("TTL=3 walk visited %d peers", count)
	}
}

func TestWalkStopsWhenHandlerSatisfied(t *testing.T) {
	sched := simnet.NewScheduler(9)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	rdvs := newRdvOverlay(t, sched, net, 6)
	sched.Run(10 * time.Minute)
	order := make([]ids.ID, len(rdvs))
	byID := map[ids.ID]*rdvPeer{}
	for i, p := range rdvs {
		order[i] = p.id
		byID[p.id] = p
	}
	ids.SortIDs(order)
	count := 0
	for _, p := range rdvs {
		p.svc.SetWalkHandler("svc", func(ids.ID, Direction, *message.Message) bool {
			count++
			return count >= 2 // satisfied at the second hop
		})
	}
	byID[order[0]].svc.Walk(Up, 100, "svc", message.New())
	sched.Run(sched.Now() + time.Minute)
	if count != 2 {
		t.Fatalf("walk continued after satisfaction: %d visits", count)
	}
}

func TestWalkDown(t *testing.T) {
	sched := simnet.NewScheduler(10)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	rdvs := newRdvOverlay(t, sched, net, 5)
	sched.Run(10 * time.Minute)
	order := make([]ids.ID, len(rdvs))
	byID := map[ids.ID]*rdvPeer{}
	for i, p := range rdvs {
		order[i] = p.id
		byID[p.id] = p
	}
	ids.SortIDs(order)
	var visited []ids.ID
	for _, p := range rdvs {
		p := p
		p.svc.SetWalkHandler("svc", func(ids.ID, Direction, *message.Message) bool {
			visited = append(visited, p.id)
			return false
		})
	}
	byID[order[len(order)-1]].svc.Walk(Down, 10, "svc", message.New())
	sched.Run(sched.Now() + time.Minute)
	if len(visited) != len(rdvs)-1 {
		t.Fatalf("down walk visited %d peers", len(visited))
	}
	for i, id := range visited {
		if !id.Equal(order[len(order)-2-i]) {
			t.Fatalf("down walk order wrong at %d", i)
		}
	}
}

func TestWalkBodyIntact(t *testing.T) {
	sched := simnet.NewScheduler(11)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	rdvs := newRdvOverlay(t, sched, net, 3)
	sched.Run(10 * time.Minute)
	order := make([]ids.ID, len(rdvs))
	byID := map[ids.ID]*rdvPeer{}
	for i, p := range rdvs {
		order[i] = p.id
		byID[p.id] = p
	}
	ids.SortIDs(order)
	var bodies []string
	var origins []ids.ID
	for _, p := range rdvs {
		p.svc.SetWalkHandler("disco", func(origin ids.ID, _ Direction, body *message.Message) bool {
			bodies = append(bodies, body.GetString("disco", "query"))
			origins = append(origins, origin)
			return false
		})
	}
	src := byID[order[0]]
	src.svc.Walk(Up, 5, "disco", message.New().AddString("disco", "query", "find-me"))
	sched.Run(sched.Now() + time.Minute)
	if len(bodies) != 2 {
		t.Fatalf("visits = %d", len(bodies))
	}
	for i := range bodies {
		if bodies[i] != "find-me" {
			t.Fatal("walk body corrupted")
		}
		if !origins[i].Equal(src.id) {
			t.Fatal("walk origin lost")
		}
	}
}

func TestWalkOnEdgeIsNoop(t *testing.T) {
	sched := simnet.NewScheduler(12)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	edge := newEdge(t, sched, net, "e", nil, DefaultConfig())
	edge.svc.Walk(Up, 5, "svc", message.New()) // must not panic
	sched.Run(time.Second)
	if net.Stats().Messages != 0 {
		t.Fatal("edge walk sent traffic")
	}
}

func TestStartStopIdempotent(t *testing.T) {
	sched := simnet.NewScheduler(13)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	rdvs := newRdvOverlay(t, sched, net, 1)
	rdvs[0].svc.Start() // second start
	rdvs[0].svc.Stop()
	rdvs[0].svc.Stop() // second stop
	sched.Run(time.Minute)
}

func TestAddSeedAndConnectLate(t *testing.T) {
	// An edge started with no seeds joins later via AddSeed + Connect —
	// the live-join path cmd/jxta-node uses after the hello bootstrap.
	sched := simnet.NewScheduler(21)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	rdvs := newRdvOverlay(t, sched, net, 1)
	edge := newEdge(t, sched, net, "late-edge", nil, DefaultConfig())
	edge.svc.Start()
	sched.Run(2 * time.Minute)
	if _, ok := edge.svc.ConnectedRdv(); ok {
		t.Fatal("seedless edge connected to something")
	}
	edge.svc.AddSeed(peerview.Seed{ID: rdvs[0].id, Addr: rdvs[0].tr.Addr()})
	edge.svc.Connect()
	sched.Run(sched.Now() + time.Minute)
	if got, ok := edge.svc.ConnectedRdv(); !ok || !got.Equal(rdvs[0].id) {
		t.Fatal("late AddSeed+Connect did not lease")
	}
}

func TestConnectOnRendezvousIsNoop(t *testing.T) {
	sched := simnet.NewScheduler(22)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	rdvs := newRdvOverlay(t, sched, net, 1)
	rdvs[0].svc.Connect() // must not panic or send lease requests
	sched.Run(time.Minute)
}
