package rendezvous

import (
	"fmt"
	"testing"
	"time"

	"jxta/internal/advertisement"
	"jxta/internal/endpoint"
	"jxta/internal/ids"
	"jxta/internal/message"
	"jxta/internal/netmodel"
	"jxta/internal/peerview"
	"jxta/internal/simnet"
	"jxta/internal/transport"
)

var testGroup = ids.FromName(ids.KindGroup, "NetPeerGroup")

type rdvPeer struct {
	id  ids.ID
	ep  *endpoint.Endpoint
	pv  *peerview.PeerView
	svc *Service
	tr  *transport.Sim
}

type edgePeer struct {
	id  ids.ID
	ep  *endpoint.Endpoint
	svc *Service
	tr  *transport.Sim
}

// newRdvOverlay builds n rendezvous peers (chain seeds) with running
// peerviews and rendezvous services.
func newRdvOverlay(t *testing.T, sched *simnet.Scheduler, net *transport.Network, n int) []*rdvPeer {
	t.Helper()
	return newRdvOverlayCfg(t, sched, net, n, DefaultConfig())
}

// newRdvOverlayCfg is newRdvOverlay with an explicit lease config (the
// self-healing tests need SelfHeal on the granting side).
func newRdvOverlayCfg(t *testing.T, sched *simnet.Scheduler, net *transport.Network, n int, cfg Config) []*rdvPeer {
	t.Helper()
	peers := make([]*rdvPeer, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("rdv%d", i)
		e := sched.NewEnv(name)
		tr, err := net.Attach(name, netmodel.Site(i%netmodel.NumSites))
		if err != nil {
			t.Fatal(err)
		}
		id := ids.NewRandom(ids.KindPeer, e.Rand())
		adv := &advertisement.Rdv{PeerID: id, GroupID: testGroup, Name: name,
			Address: string(tr.Addr())}
		ep := endpoint.New(e, id, tr)
		var seeds []peerview.Seed
		if i > 0 {
			seeds = []peerview.Seed{{ID: peers[i-1].id, Addr: peers[i-1].tr.Addr()}}
		}
		pv := peerview.New(e, ep, adv, peerview.DefaultConfig(), seeds)
		svc := NewRendezvous(e, ep, pv, cfg)
		peers[i] = &rdvPeer{id: id, ep: ep, pv: pv, svc: svc, tr: tr}
		pv.Start()
		svc.Start()
	}
	return peers
}

func newEdge(t *testing.T, sched *simnet.Scheduler, net *transport.Network, name string, seeds []peerview.Seed, cfg Config) *edgePeer {
	t.Helper()
	e := sched.NewEnv(name)
	tr, err := net.Attach(name, netmodel.Site(0))
	if err != nil {
		t.Fatal(err)
	}
	id := ids.NewRandom(ids.KindPeer, e.Rand())
	ep := endpoint.New(e, id, tr)
	svc := NewEdge(e, ep, seeds, cfg)
	return &edgePeer{id: id, ep: ep, svc: svc, tr: tr}
}

func TestDirectionString(t *testing.T) {
	if Up.String() != "up" || Down.String() != "down" {
		t.Fatal("direction strings wrong")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg != DefaultConfig() {
		t.Fatalf("withDefaults = %+v", cfg)
	}
	odd := Config{LeaseDuration: time.Minute, RenewFraction: 1.5, ResponseTimeout: time.Second}
	got := odd.withDefaults()
	if got.RenewFraction != 0.5 {
		t.Fatal("out-of-range RenewFraction not defaulted")
	}
	if got.LeaseDuration != time.Minute {
		t.Fatal("valid LeaseDuration overwritten")
	}
}

func TestEdgeAcquiresLease(t *testing.T) {
	sched := simnet.NewScheduler(1)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	rdvs := newRdvOverlay(t, sched, net, 1)
	edge := newEdge(t, sched, net, "edge0",
		[]peerview.Seed{{ID: rdvs[0].id, Addr: rdvs[0].tr.Addr()}}, DefaultConfig())
	var events []bool
	edge.svc.AddLeaseListener(func(rdv ids.ID, connected bool) {
		if !rdv.Equal(rdvs[0].id) {
			t.Errorf("lease event about wrong rdv")
		}
		events = append(events, connected)
	})
	edge.svc.Start()
	sched.Run(time.Minute)
	if got, ok := edge.svc.ConnectedRdv(); !ok || !got.Equal(rdvs[0].id) {
		t.Fatal("edge not connected to its rendezvous")
	}
	if !rdvs[0].svc.HasClient(edge.id) {
		t.Fatal("rendezvous does not list the edge as client")
	}
	if len(events) != 1 || !events[0] {
		t.Fatalf("lease events = %v", events)
	}
}

func TestLeaseRenewalKeepsClientAlive(t *testing.T) {
	sched := simnet.NewScheduler(2)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	rdvs := newRdvOverlay(t, sched, net, 1)
	cfg := Config{LeaseDuration: 2 * time.Minute}
	edge := newEdge(t, sched, net, "edge0",
		[]peerview.Seed{{ID: rdvs[0].id, Addr: rdvs[0].tr.Addr()}}, cfg)
	edge.svc.Start()
	// Run far past several lease durations: renewals must keep the client.
	sched.Run(20 * time.Minute)
	if !rdvs[0].svc.HasClient(edge.id) {
		t.Fatal("client lapsed despite renewals")
	}
}

func TestEdgeFailoverToSecondSeed(t *testing.T) {
	sched := simnet.NewScheduler(3)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	rdvs := newRdvOverlay(t, sched, net, 2)
	seeds := []peerview.Seed{
		{ID: rdvs[0].id, Addr: rdvs[0].tr.Addr()},
		{ID: rdvs[1].id, Addr: rdvs[1].tr.Addr()},
	}
	cfg := Config{LeaseDuration: 2 * time.Minute, ResponseTimeout: 10 * time.Second}
	edge := newEdge(t, sched, net, "edge0", seeds, cfg)
	edge.svc.Start()
	sched.Run(time.Minute)
	if got, _ := edge.svc.ConnectedRdv(); !got.Equal(rdvs[0].id) {
		t.Fatal("edge did not connect to first seed")
	}
	// Kill rdv0: renewals fail, edge must fail over to rdv1.
	rdvs[0].pv.Stop()
	rdvs[0].svc.Stop()
	rdvs[0].tr.Close()
	sched.Run(20 * time.Minute)
	got, ok := edge.svc.ConnectedRdv()
	if !ok || !got.Equal(rdvs[1].id) {
		t.Fatalf("edge did not fail over: connected=%v to %s", ok, got.Short())
	}
}

func TestEdgeStopCancelsLease(t *testing.T) {
	sched := simnet.NewScheduler(4)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	rdvs := newRdvOverlay(t, sched, net, 1)
	edge := newEdge(t, sched, net, "edge0",
		[]peerview.Seed{{ID: rdvs[0].id, Addr: rdvs[0].tr.Addr()}}, DefaultConfig())
	edge.svc.Start()
	sched.Run(time.Minute)
	edge.svc.Stop()
	sched.Run(2 * time.Minute)
	if rdvs[0].svc.HasClient(edge.id) {
		t.Fatal("lease survived explicit cancel")
	}
	if _, ok := edge.svc.ConnectedRdv(); ok {
		t.Fatal("edge still connected after Stop")
	}
}

func TestClientSweepExpiresSilentEdges(t *testing.T) {
	sched := simnet.NewScheduler(5)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	rdvs := newRdvOverlay(t, sched, net, 1)
	cfg := Config{LeaseDuration: 2 * time.Minute}
	edge := newEdge(t, sched, net, "edge0",
		[]peerview.Seed{{ID: rdvs[0].id, Addr: rdvs[0].tr.Addr()}}, cfg)
	edge.svc.Start()
	sched.Run(time.Minute)
	// Edge dies without cancelling.
	edge.svc.cancelTimers()
	edge.svc.started = false
	edge.tr.Close()
	sched.Run(30 * time.Minute)
	if rdvs[0].svc.HasClient(edge.id) {
		t.Fatal("dead edge's lease never swept")
	}
	if len(rdvs[0].svc.Clients()) != 0 {
		t.Fatal("clients list not empty")
	}
}

func TestEdgesDoNotGrantLeases(t *testing.T) {
	sched := simnet.NewScheduler(6)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	e1 := newEdge(t, sched, net, "e1", nil, DefaultConfig())
	e2 := newEdge(t, sched, net, "e2",
		[]peerview.Seed{{ID: e1.id, Addr: e1.tr.Addr()}}, DefaultConfig())
	e2.svc.Start()
	sched.Run(5 * time.Minute)
	if _, ok := e2.svc.ConnectedRdv(); ok {
		t.Fatal("edge obtained a lease from another edge")
	}
}

func TestWalkVisitsPeersInOrder(t *testing.T) {
	sched := simnet.NewScheduler(7)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	rdvs := newRdvOverlay(t, sched, net, 6)
	sched.Run(10 * time.Minute) // converge peerviews

	// Global ID order.
	order := make([]ids.ID, len(rdvs))
	byID := map[ids.ID]*rdvPeer{}
	for i, p := range rdvs {
		order[i] = p.id
		byID[p.id] = p
	}
	ids.SortIDs(order)

	var visited []ids.ID
	for _, p := range rdvs {
		p := p
		p.svc.SetWalkHandler("svc", func(origin ids.ID, dir Direction, body *message.Message) bool {
			visited = append(visited, p.id)
			return false
		})
	}
	// Walk up from the lowest peer: must visit the rest in ascending order.
	src := byID[order[0]]
	src.svc.Walk(Up, 10, "svc", message.New().AddString("x", "y", "z"))
	sched.Run(sched.Now() + time.Minute)
	if len(visited) != len(rdvs)-1 {
		t.Fatalf("walk visited %d peers, want %d", len(visited), len(rdvs)-1)
	}
	for i, id := range visited {
		if !id.Equal(order[i+1]) {
			t.Fatalf("walk order wrong at %d", i)
		}
	}
}

func TestWalkTTLBounds(t *testing.T) {
	sched := simnet.NewScheduler(8)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	rdvs := newRdvOverlay(t, sched, net, 8)
	sched.Run(10 * time.Minute)
	order := make([]ids.ID, len(rdvs))
	byID := map[ids.ID]*rdvPeer{}
	for i, p := range rdvs {
		order[i] = p.id
		byID[p.id] = p
	}
	ids.SortIDs(order)
	count := 0
	for _, p := range rdvs {
		p.svc.SetWalkHandler("svc", func(ids.ID, Direction, *message.Message) bool {
			count++
			return false
		})
	}
	byID[order[0]].svc.Walk(Up, 3, "svc", message.New())
	sched.Run(sched.Now() + time.Minute)
	if count != 3 {
		t.Fatalf("TTL=3 walk visited %d peers", count)
	}
}

func TestWalkStopsWhenHandlerSatisfied(t *testing.T) {
	sched := simnet.NewScheduler(9)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	rdvs := newRdvOverlay(t, sched, net, 6)
	sched.Run(10 * time.Minute)
	order := make([]ids.ID, len(rdvs))
	byID := map[ids.ID]*rdvPeer{}
	for i, p := range rdvs {
		order[i] = p.id
		byID[p.id] = p
	}
	ids.SortIDs(order)
	count := 0
	for _, p := range rdvs {
		p.svc.SetWalkHandler("svc", func(ids.ID, Direction, *message.Message) bool {
			count++
			return count >= 2 // satisfied at the second hop
		})
	}
	byID[order[0]].svc.Walk(Up, 100, "svc", message.New())
	sched.Run(sched.Now() + time.Minute)
	if count != 2 {
		t.Fatalf("walk continued after satisfaction: %d visits", count)
	}
}

func TestWalkDown(t *testing.T) {
	sched := simnet.NewScheduler(10)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	rdvs := newRdvOverlay(t, sched, net, 5)
	sched.Run(10 * time.Minute)
	order := make([]ids.ID, len(rdvs))
	byID := map[ids.ID]*rdvPeer{}
	for i, p := range rdvs {
		order[i] = p.id
		byID[p.id] = p
	}
	ids.SortIDs(order)
	var visited []ids.ID
	for _, p := range rdvs {
		p := p
		p.svc.SetWalkHandler("svc", func(ids.ID, Direction, *message.Message) bool {
			visited = append(visited, p.id)
			return false
		})
	}
	byID[order[len(order)-1]].svc.Walk(Down, 10, "svc", message.New())
	sched.Run(sched.Now() + time.Minute)
	if len(visited) != len(rdvs)-1 {
		t.Fatalf("down walk visited %d peers", len(visited))
	}
	for i, id := range visited {
		if !id.Equal(order[len(order)-2-i]) {
			t.Fatalf("down walk order wrong at %d", i)
		}
	}
}

func TestWalkBodyIntact(t *testing.T) {
	sched := simnet.NewScheduler(11)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	rdvs := newRdvOverlay(t, sched, net, 3)
	sched.Run(10 * time.Minute)
	order := make([]ids.ID, len(rdvs))
	byID := map[ids.ID]*rdvPeer{}
	for i, p := range rdvs {
		order[i] = p.id
		byID[p.id] = p
	}
	ids.SortIDs(order)
	var bodies []string
	var origins []ids.ID
	for _, p := range rdvs {
		p.svc.SetWalkHandler("disco", func(origin ids.ID, _ Direction, body *message.Message) bool {
			bodies = append(bodies, body.GetString("disco", "query"))
			origins = append(origins, origin)
			return false
		})
	}
	src := byID[order[0]]
	src.svc.Walk(Up, 5, "disco", message.New().AddString("disco", "query", "find-me"))
	sched.Run(sched.Now() + time.Minute)
	if len(bodies) != 2 {
		t.Fatalf("visits = %d", len(bodies))
	}
	for i := range bodies {
		if bodies[i] != "find-me" {
			t.Fatal("walk body corrupted")
		}
		if !origins[i].Equal(src.id) {
			t.Fatal("walk origin lost")
		}
	}
}

func TestWalkOnEdgeIsNoop(t *testing.T) {
	sched := simnet.NewScheduler(12)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	edge := newEdge(t, sched, net, "e", nil, DefaultConfig())
	edge.svc.Walk(Up, 5, "svc", message.New()) // must not panic
	sched.Run(time.Second)
	if net.Stats().Messages != 0 {
		t.Fatal("edge walk sent traffic")
	}
}

func TestStartStopIdempotent(t *testing.T) {
	sched := simnet.NewScheduler(13)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	rdvs := newRdvOverlay(t, sched, net, 1)
	rdvs[0].svc.Start() // second start
	rdvs[0].svc.Stop()
	rdvs[0].svc.Stop() // second stop
	sched.Run(time.Minute)
}

func TestAddSeedAndConnectLate(t *testing.T) {
	// An edge started with no seeds joins later via AddSeed + Connect —
	// the live-join path cmd/jxta-node uses after the hello bootstrap.
	sched := simnet.NewScheduler(21)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	rdvs := newRdvOverlay(t, sched, net, 1)
	edge := newEdge(t, sched, net, "late-edge", nil, DefaultConfig())
	edge.svc.Start()
	sched.Run(2 * time.Minute)
	if _, ok := edge.svc.ConnectedRdv(); ok {
		t.Fatal("seedless edge connected to something")
	}
	edge.svc.AddSeed(peerview.Seed{ID: rdvs[0].id, Addr: rdvs[0].tr.Addr()})
	edge.svc.Connect()
	sched.Run(sched.Now() + time.Minute)
	if got, ok := edge.svc.ConnectedRdv(); !ok || !got.Equal(rdvs[0].id) {
		t.Fatal("late AddSeed+Connect did not lease")
	}
}

func TestConnectOnRendezvousIsNoop(t *testing.T) {
	sched := simnet.NewScheduler(22)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	rdvs := newRdvOverlay(t, sched, net, 1)
	rdvs[0].svc.Connect() // must not panic or send lease requests
	sched.Run(time.Minute)
}

// selfHealCfg is the lease config the self-healing tests share.
func selfHealCfg() Config {
	return Config{
		LeaseDuration:    2 * time.Minute,
		ResponseTimeout:  10 * time.Second,
		FailoverAttempts: 3,
		SelfHeal:         true,
	}
}

func TestFailoverBoundedWithoutSelfHeal(t *testing.T) {
	sched := simnet.NewScheduler(40)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	rdvs := newRdvOverlay(t, sched, net, 1)
	cfg := Config{LeaseDuration: 2 * time.Minute, ResponseTimeout: 10 * time.Second,
		FailoverAttempts: 3}
	edge := newEdge(t, sched, net, "edge0",
		[]peerview.Seed{{ID: rdvs[0].id, Addr: rdvs[0].tr.Addr()}}, cfg)
	edge.svc.Start()
	sched.Run(time.Minute)
	if _, ok := edge.svc.ConnectedRdv(); !ok {
		t.Fatal("edge did not lease")
	}
	rdvs[0].pv.Stop()
	rdvs[0].svc.Abort()
	rdvs[0].tr.Close()
	sched.Run(20 * time.Minute)
	if !edge.svc.Dormant() {
		t.Fatal("edge never went dormant after exhausting its failover budget")
	}
	msgs := net.Stats().Messages
	sched.Run(sched.Now() + 30*time.Minute)
	if got := net.Stats().Messages; got != msgs {
		t.Fatalf("dormant edge still sent %d messages", got-msgs)
	}
	// Connect revives it with a fresh budget (nothing to lease from, but
	// the attempt cycle restarts).
	edge.svc.Connect()
	if edge.svc.Dormant() {
		t.Fatal("Connect did not revive the dormant edge")
	}
}

func TestGrantCarriesAlternatesAndRoster(t *testing.T) {
	sched := simnet.NewScheduler(41)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	rdvs := newRdvOverlayCfg(t, sched, net, 3, selfHealCfg())
	sched.Run(10 * time.Minute) // peerviews converge
	cfg := selfHealCfg()
	seeds := []peerview.Seed{{ID: rdvs[0].id, Addr: rdvs[0].tr.Addr()}}
	e1 := newEdge(t, sched, net, "e1", seeds, cfg)
	e2 := newEdge(t, sched, net, "e2", seeds, cfg)
	e1.svc.Start()
	e2.svc.Start()
	sched.Run(sched.Now() + 3*time.Minute) // lease + at least one renewal
	if got := len(e1.svc.Alternates()); got != 2 {
		t.Fatalf("e1 learned %d alternates, want 2", got)
	}
	roster := e1.svc.Roster()
	if len(roster) != 2 {
		t.Fatalf("e1 roster = %d entries, want both co-clients", len(roster))
	}
	for i := 1; i < len(roster); i++ {
		if !roster[i-1].ID.Less(roster[i].ID) {
			t.Fatal("roster not in ascending ID order")
		}
	}
}

func TestEdgeFailsOverToAlternateNotInSeeds(t *testing.T) {
	sched := simnet.NewScheduler(42)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	rdvs := newRdvOverlayCfg(t, sched, net, 2, selfHealCfg())
	sched.Run(10 * time.Minute)
	// Seeded ONLY with rdv0; rdv1 is reachable solely via the alternates.
	edge := newEdge(t, sched, net, "edge0",
		[]peerview.Seed{{ID: rdvs[0].id, Addr: rdvs[0].tr.Addr()}}, selfHealCfg())
	edge.svc.Start()
	sched.Run(sched.Now() + time.Minute)
	if got, _ := edge.svc.ConnectedRdv(); !got.Equal(rdvs[0].id) {
		t.Fatal("edge did not lease with its seed")
	}
	rdvs[0].pv.Stop()
	rdvs[0].svc.Abort()
	rdvs[0].tr.Close()
	sched.Run(sched.Now() + 20*time.Minute)
	got, ok := edge.svc.ConnectedRdv()
	if !ok || !got.Equal(rdvs[1].id) {
		t.Fatalf("edge did not re-seed from alternates: connected=%v to %s", ok, got.Short())
	}
}

func TestPromotionElectionPolicies(t *testing.T) {
	a := peerview.Seed{ID: ids.FromName(ids.KindPeer, "a")}
	b := peerview.Seed{ID: ids.FromName(ids.KindPeer, "b")}
	roster := []peerview.Seed{a, b}
	if !a.ID.Less(b.ID) {
		roster = []peerview.Seed{b, a}
		a, b = b, a
	}
	if got := pickSuccessor(PromoteLowestID, roster); !got.ID.Equal(a.ID) {
		t.Fatal("PromoteLowestID picked the wrong successor")
	}
	if got := pickSuccessor(PromoteHighestID, roster); !got.ID.Equal(b.ID) {
		t.Fatal("PromoteHighestID picked the wrong successor")
	}
}

// TestPromoteSwapsRoleInPlace drives Service.Promote directly: the edge
// becomes a rendezvous, grants leases and owns the peerview it was handed.
func TestPromoteSwapsRoleInPlace(t *testing.T) {
	sched := simnet.NewScheduler(43)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	promotee := newEdge(t, sched, net, "promotee", nil, selfHealCfg())
	promotee.svc.Start()
	if promotee.svc.IsRendezvous() {
		t.Fatal("edge starts as rendezvous")
	}
	adv := &advertisement.Rdv{PeerID: promotee.id, GroupID: testGroup,
		Name: "promotee", Address: string(promotee.tr.Addr())}
	pv := peerview.New(sched.NewEnv("promotee-pv"), promotee.ep, adv,
		peerview.DefaultConfig(), nil)
	promotee.svc.Promote(pv)
	if !promotee.svc.IsRendezvous() || promotee.svc.PeerView() != pv {
		t.Fatal("Promote did not swap the role")
	}
	if promotee.svc.Promotions != 1 {
		t.Fatalf("Promotions = %d", promotee.svc.Promotions)
	}
	// A fresh edge can now lease from the promoted peer.
	client := newEdge(t, sched, net, "client",
		[]peerview.Seed{{ID: promotee.id, Addr: promotee.tr.Addr()}}, selfHealCfg())
	client.svc.Start()
	sched.Run(sched.Now() + time.Minute)
	if got, ok := client.svc.ConnectedRdv(); !ok || !got.Equal(promotee.id) {
		t.Fatal("promoted peer does not grant leases")
	}
	if !promotee.svc.HasClient(client.id) {
		t.Fatal("promoted peer does not track its client")
	}
}

// TestGracefulHandoffTransfersLeaseTable stops a rendezvous holding leases
// while a second rendezvous is in its peerview: the successor imports the
// client table and the clients are redirected to it without waiting for
// their renewal timers.
func TestGracefulHandoffTransfersLeaseTable(t *testing.T) {
	sched := simnet.NewScheduler(44)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	// Build the rendezvous with self-healing lease configs.
	var rdvs []*rdvPeer
	{
		cfg := selfHealCfg()
		for i := 0; i < 2; i++ {
			name := fmt.Sprintf("rdv%d", i)
			e := sched.NewEnv(name)
			tr, err := net.Attach(name, netmodel.Site(i%netmodel.NumSites))
			if err != nil {
				t.Fatal(err)
			}
			id := ids.NewRandom(ids.KindPeer, e.Rand())
			adv := &advertisement.Rdv{PeerID: id, GroupID: testGroup, Name: name,
				Address: string(tr.Addr())}
			ep := endpoint.New(e, id, tr)
			var seeds []peerview.Seed
			if i > 0 {
				seeds = []peerview.Seed{{ID: rdvs[0].id, Addr: rdvs[0].tr.Addr()}}
			}
			pv := peerview.New(e, ep, adv, peerview.DefaultConfig(), seeds)
			svc := NewRendezvous(e, ep, pv, cfg)
			rdvs = append(rdvs, &rdvPeer{id: id, ep: ep, pv: pv, svc: svc, tr: tr})
			pv.Start()
			svc.Start()
		}
	}
	sched.Run(10 * time.Minute)
	edge := newEdge(t, sched, net, "edge0",
		[]peerview.Seed{{ID: rdvs[0].id, Addr: rdvs[0].tr.Addr()}}, selfHealCfg())
	edge.svc.Start()
	sched.Run(sched.Now() + time.Minute)
	if !rdvs[0].svc.HasClient(edge.id) {
		t.Fatal("edge did not lease with rdv0")
	}

	rdvs[0].pv.Stop()
	rdvs[0].svc.Stop() // graceful: handoff + redirect
	sched.Run(sched.Now() + time.Minute)

	if !rdvs[1].svc.HasClient(edge.id) {
		t.Fatal("successor did not import the handed-off lease")
	}
	if got, ok := edge.svc.ConnectedRdv(); !ok || !got.Equal(rdvs[1].id) {
		t.Fatal("client was not redirected to the successor")
	}
}

func TestSeedRoundTrip(t *testing.T) {
	sd := peerview.Seed{ID: ids.FromName(ids.KindPeer, "x"), Addr: "sim://x"}
	got, ok := parseSeed(encodeSeed(sd))
	if !ok || !got.ID.Equal(sd.ID) || got.Addr != sd.Addr {
		t.Fatalf("seed round-trip: %+v ok=%v", got, ok)
	}
	if _, ok := parseSeed("garbage"); ok {
		t.Fatal("parseSeed accepted garbage")
	}
	if _, ok := parseSeed("not-an-id sim://x"); ok {
		t.Fatal("parseSeed accepted a bad ID")
	}
}

// TestElectionSkipsDeadSuccessor pins the stale-roster recovery chain: the
// elected successor is itself dead, so the waiting edge strikes it from the
// roster, falls back to the candidate rotation, and the next election picks
// the next candidate — here, itself, so it promotes.
func TestElectionSkipsDeadSuccessor(t *testing.T) {
	sched := simnet.NewScheduler(45)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	rdvs := newRdvOverlayCfg(t, sched, net, 1, selfHealCfg())
	seeds := []peerview.Seed{{ID: rdvs[0].id, Addr: rdvs[0].tr.Addr()}}
	e1 := newEdge(t, sched, net, "e1", seeds, selfHealCfg())
	e2 := newEdge(t, sched, net, "e2", seeds, selfHealCfg())
	// Wire the promote hook the node layer normally installs.
	for _, e := range []*edgePeer{e1, e2} {
		e := e
		e.svc.SetPromoteHook(func() {
			adv := &advertisement.Rdv{PeerID: e.id, GroupID: testGroup,
				Name: "promoted", Address: string(e.tr.Addr())}
			e.svc.Promote(peerview.New(sched.NewEnv("pv-"+e.id.Short()),
				e.ep, adv, peerview.DefaultConfig(), nil))
		})
	}
	e1.svc.Start()
	e2.svc.Start()
	// Let both lease and renew at least once so both rosters carry both.
	sched.Run(4 * time.Minute)
	lower, higher := e1, e2
	if e2.id.Less(e1.id) {
		lower, higher = e2, e1
	}
	if len(higher.svc.Roster()) != 2 {
		t.Fatalf("roster = %d entries before the crash", len(higher.svc.Roster()))
	}
	// The would-be successor (lowest ID) dies silently, then the rendezvous
	// crashes before the survivor's roster refreshes.
	lower.svc.cancelTimers()
	lower.svc.started = false
	lower.tr.Close()
	rdvs[0].pv.Stop()
	rdvs[0].svc.Abort()
	rdvs[0].tr.Close()

	sched.Run(sched.Now() + 30*time.Minute)
	if !higher.svc.IsRendezvous() {
		t.Fatal("survivor never promoted after the elected successor proved dead")
	}
	if higher.svc.Dormant() {
		t.Fatal("survivor dormant despite being electable")
	}
}

func TestRumorAgingEvictsDeadIdentities(t *testing.T) {
	// A rumor for an identity that is never a peerview member or leased
	// client must age out of the store under RumorDeadSweeps (on by default
	// since PR 10; 0 selects DefaultRumorDeadSweeps), while live tier
	// members survive indefinitely. A negative knob disables aging and
	// restores the unbounded PR 5 behaviour.
	for _, deadSweeps := range []int{-1, 0, 2} {
		sched := simnet.NewScheduler(1)
		net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
		cfg := DefaultConfig()
		cfg.LeaseDuration = 2 * time.Minute // client sweep every 30s
		cfg.IslandMerge = true
		cfg.RumorDeadSweeps = deadSweeps
		rdvs := newRdvOverlayCfg(t, sched, net, 2, cfg)
		ghost := peerview.NewRumor(peerview.Seed{
			ID:   ids.FromName(ids.KindPeer, "long-gone"),
			Addr: "sim://0/long-gone",
		})
		member := peerview.NewRumor(peerview.Seed{
			ID: rdvs[1].id, Addr: rdvs[1].tr.Addr(),
		})
		sched.After(time.Minute, func() {
			rdvs[0].svc.rumors.Add(ghost)
			rdvs[0].svc.rumors.Add(member)
		})
		sched.Run(20 * time.Minute)
		hasGhost := false
		hasPeer := false
		for _, r := range rdvs[0].svc.Rumors() {
			hasGhost = hasGhost || r.ID.Equal(ghost.ID)
			hasPeer = hasPeer || r.ID.Equal(rdvs[1].id)
		}
		if deadSweeps < 0 && !hasGhost {
			t.Fatal("aging disabled but the dead rumor was evicted")
		}
		if deadSweeps >= 0 && hasGhost {
			t.Fatalf("dead rumor survived 19 minutes of sweeps (deadSweeps=%d)", deadSweeps)
		}
		if !hasPeer {
			t.Fatalf("live tier member evicted (deadSweeps=%d)", deadSweeps)
		}
	}
}

func TestDeadRumorRetiresFromTierProbes(t *testing.T) {
	// PR 5 known limit: an anchor kept tier-probing every rumored identity
	// forever, dead or not. With rumor aging on by default (PR 10), a
	// confirmed-dead identity must stop consuming probe traffic after
	// RumorDeadSweeps sweeps; with aging disabled (negative), the probes
	// continue indefinitely (the old behaviour, kept reachable on purpose).
	for _, deadSweeps := range []int{0, -1} {
		sched := simnet.NewScheduler(55)
		net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
		cfg := DefaultConfig()
		cfg.LeaseDuration = 2 * time.Minute // sweep every 30s, probe retry every 1m
		cfg.IslandMerge = true
		cfg.RumorDeadSweeps = deadSweeps
		rdvs := newRdvOverlayCfg(t, sched, net, 1, cfg)

		// A silent listener at the ghost's address: it counts the tier
		// probes it receives and never answers — a dead peer, except that
		// we can see the traffic wasted on it.
		ghostEnv := sched.NewEnv("ghost")
		ghostTr, err := net.Attach("ghost", netmodel.Site(0))
		if err != nil {
			t.Fatal(err)
		}
		ghostID := ids.FromName(ids.KindPeer, "long-gone")
		ghostEP := endpoint.New(ghostEnv, ghostID, ghostTr)
		probes := 0
		ghostEP.Register(LeaseService, func(src ids.ID, m *message.Message) { probes++ })

		sched.After(time.Minute, func() {
			rdvs[0].svc.rumors.Add(peerview.NewRumor(peerview.Seed{
				ID: ghostID, Addr: ghostTr.Addr(),
			}))
		})
		sched.Run(15 * time.Minute)
		early := probes
		if early == 0 {
			t.Fatal("ghost rumor never probed at all")
		}
		sched.Run(45 * time.Minute)
		late := probes
		if deadSweeps >= 0 {
			if late != early {
				t.Fatalf("dead identity still probed after eviction: %d probes at 15m, %d at 45m", early, late)
			}
			if hasGhostRumor(rdvs[0].svc, ghostID) {
				t.Fatal("dead rumor still stored after its aging horizon")
			}
		} else if late <= early {
			t.Fatalf("aging disabled but probing stopped: %d at 15m, %d at 45m", early, late)
		}
	}
}

func hasGhostRumor(s *Service, id ids.ID) bool {
	for _, r := range s.Rumors() {
		if r.ID.Equal(id) {
			return true
		}
	}
	return false
}

func TestDormantEdgeRevivedByTierProbe(t *testing.T) {
	// The flip side of rumor aging: a genuinely dormant edge must still be
	// revived by the tier probes sent inside its grace window — aging must
	// retire only identities that answer nothing, not sleeping bridges.
	sched := simnet.NewScheduler(56)
	net := transport.NewNetwork(sched, netmodel.Uniform(time.Millisecond))
	cfg := DefaultConfig()
	cfg.LeaseDuration = 2 * time.Minute
	cfg.ResponseTimeout = 10 * time.Second
	cfg.FailoverAttempts = 3
	cfg.IslandMerge = true
	rdvs := newRdvOverlayCfg(t, sched, net, 2, cfg)
	edge := newEdge(t, sched, net, "edge0",
		[]peerview.Seed{{ID: rdvs[1].id, Addr: rdvs[1].tr.Addr()}}, cfg)
	edge.svc.Start()
	sched.Run(time.Minute)
	if got, ok := edge.svc.ConnectedRdv(); !ok || !got.Equal(rdvs[1].id) {
		t.Fatal("edge did not lease from its seed")
	}
	// The edge's only rendezvous dies; with no alternates the edge burns its
	// failover budget and goes dormant.
	rdvs[1].pv.Stop()
	rdvs[1].svc.Abort()
	rdvs[1].tr.Close()
	sched.Run(20 * time.Minute)
	if !edge.svc.Dormant() {
		t.Fatal("edge never went dormant")
	}
	// The surviving anchor hears a rumor naming the dormant edge (e.g. from
	// an old roster). Its first tier probe must wake the edge, which then
	// leases from the prober — before aging could retire it.
	rdvs[0].svc.rumors.Add(peerview.NewRumor(peerview.Seed{
		ID: edge.id, Addr: edge.tr.Addr(),
	}))
	sched.Run(sched.Now() + 5*time.Minute)
	if edge.svc.Dormant() {
		t.Fatal("tier probe did not revive the dormant edge")
	}
	if got, ok := edge.svc.ConnectedRdv(); !ok || !got.Equal(rdvs[0].id) {
		t.Fatalf("revived edge not leased to the probing anchor (connected=%v)", ok)
	}
}
