package rendezvous

import (
	"time"

	"jxta/internal/hibpool"
	"jxta/internal/ids"
	"jxta/internal/peerview"
)

// Edge hibernation (PR 9). A steady-state edge holds a lease and waits for
// its renewal timer; between renewals its rendezvous service retains four
// map shells (all empty in the edge role or quiescent), the walk-handler
// table, the seed/alternate/roster slices and the rumor store's index
// maps. Freeze packs the retained data into a pooled record and releases
// everything else; any touch — the renewal firing, an inbound grant,
// redirect or tier probe, a node verb — rehydrates first. Only edges
// freeze: the rendezvous role is permanently hot.

// rdvWalkHandler is the packed form of one walk-handler registration.
type rdvWalkHandler struct {
	svc string
	h   WalkHandler
}

// rdvFrozen is the freeze-dried edge service: walk handlers and the
// self-healing slices, packed tight.
type rdvFrozen struct {
	walkHandlers []rdvWalkHandler
	seeds        []peerview.Seed
	alternates   []peerview.Seed
	roster       []peerview.Seed
}

var (
	rdvFrozenPool = hibpool.Records[rdvFrozen]{Reset: func(f *rdvFrozen) {
		clear(f.walkHandlers)
		f.walkHandlers = f.walkHandlers[:0]
		clear(f.seeds)
		f.seeds = f.seeds[:0]
		clear(f.alternates)
		f.alternates = f.alternates[:0]
		clear(f.roster)
		f.roster = f.roster[:0]
	}}
	rdvClientsPool hibpool.Maps[ids.ID, clientLease]
	rdvWalkHPool   hibpool.Maps[string, WalkHandler]
	rdvSeenPool    hibpool.Maps[string, bool]
	rdvTriedPool   hibpool.Maps[ids.ID, time.Duration]
)

// Quiescent reports whether the service can be frozen: edge role, no lease
// attempt in flight (the armed renewal timer is the wake source, not a
// blocker), and every map empty. Dormant edges qualify — waking one via a
// tier probe is exactly a rehydration.
func (s *Service) Quiescent() bool {
	return !s.IsRendezvous() && s.grantTimer == nil && !s.awaitingSucc &&
		len(s.clients) == 0 && len(s.walkSeen) == 0 && len(s.mergeTried) == 0
}

// Freeze packs the edge service into a pooled record and releases the map
// shells, slices and rumor-store index. Caller must have checked
// Quiescent. Idempotent.
func (s *Service) Freeze() {
	if s.frozen != nil {
		return
	}
	f := rdvFrozenPool.Get()
	for svc, h := range s.walkHandlers {
		f.walkHandlers = append(f.walkHandlers, rdvWalkHandler{svc: svc, h: h})
	}
	f.seeds = append(f.seeds, s.seeds...)
	f.alternates = append(f.alternates, s.alternates...)
	f.roster = append(f.roster, s.roster...)
	rdvClientsPool.Put(s.clients)
	rdvWalkHPool.Put(s.walkHandlers)
	rdvSeenPool.Put(s.walkSeen)
	rdvTriedPool.Put(s.mergeTried)
	s.clients = nil
	s.walkHandlers = nil
	s.walkSeen = nil
	s.mergeTried = nil
	s.seeds = nil
	s.alternates = nil
	s.roster = nil
	s.rumors.Freeze()
	s.frozen = f
}

// thaw rehydrates a frozen service; a single nil check when live. The
// rumor store thaws separately, on its own first touch.
func (s *Service) thaw() {
	if s.frozen == nil {
		return
	}
	f := s.frozen
	s.frozen = nil
	s.clients = rdvClientsPool.Get()
	s.walkHandlers = rdvWalkHPool.Get()
	for _, wh := range f.walkHandlers {
		s.walkHandlers[wh.svc] = wh.h
	}
	s.walkSeen = rdvSeenPool.Get()
	s.mergeTried = rdvTriedPool.Get()
	if len(f.seeds) > 0 {
		s.seeds = append([]peerview.Seed(nil), f.seeds...)
	}
	if len(f.alternates) > 0 {
		s.alternates = append([]peerview.Seed(nil), f.alternates...)
	}
	if len(f.roster) > 0 {
		s.roster = append([]peerview.Seed(nil), f.roster...)
	}
	rdvFrozenPool.Put(f)
}

// Frozen reports whether the service is currently freeze-dried (tests).
func (s *Service) Frozen() bool { return s.frozen != nil }

// RumorsResident reports whether the tier-rumor store's index maps are
// currently materialized (tests: freeze must release them).
func (s *Service) RumorsResident() bool { return s.rumors.Resident() }
