// Package rendezvous implements the JXTA rendezvous protocol minus the
// peerview (which lives in internal/peerview): the rendezvous lease
// protocol, by which edge peers subscribe to a rendezvous peer, and the
// rendezvous propagation protocol (the walker), which moves messages across
// the ID-ordered rendezvous network (§3.2 items 2 and 3).
//
// Roles: a peer runs either as a rendezvous (super-peer, owns a peerview,
// serves leases) or as an edge (holds a lease on one rendezvous and renews
// it; fails over to another seed when the rendezvous dies). The role is
// dynamic: Promote swaps an edge to the rendezvous role in place, which is
// how a self-healing overlay replaces a dead super-peer without redeploying
// (Config.SelfHeal).
//
// # Self-healing
//
// With SelfHeal enabled, lease grants carry two extra state snapshots: the
// rendezvous' current peerview members ("alternates") and its client roster.
// Edges use the alternates to re-seed their failover rotation when the
// rendezvous dies silently — the fall-back the peerview provides — and the
// roster to run a deterministic successor election when *no* rendezvous is
// reachable at all: the configured PromotionPolicy picks one client, that
// client promotes itself to the rendezvous role (via the hook the node
// installs), and the others re-lease with it. A gracefully stopping
// rendezvous goes further and hands its state off explicitly: the client
// lease table (and, through registered state exporters, the SRDI index)
// transfers to a successor — a peerview neighbour when one exists, an
// elected client otherwise — and every remaining client is redirected, so
// discovery keeps answering through the transition.
package rendezvous

import (
	"strconv"
	"strings"
	"time"

	"jxta/internal/endpoint"
	"jxta/internal/env"
	"jxta/internal/ids"
	"jxta/internal/message"
	"jxta/internal/metrics"
	"jxta/internal/peerview"
	"jxta/internal/transport"
)

// Endpoint service names.
const (
	LeaseService = "rdv.lease"
	WalkService  = "rdv.walk"
)

// Lease protocol elements, namespace "lease".
const (
	leaseNS       = "lease"
	elemRequest   = "Request"  // requested duration (ns)
	elemGranted   = "Granted"  // granted duration (ns)
	elemCancelled = "Cancel"   // edge departing
	elemAddr      = "Addr"     // requester's transport address (SelfHeal)
	elemAlt       = "Alt"      // repeated: peerview member "id addr" (SelfHeal)
	elemClient    = "Cli"      // repeated: client roster/handoff entry (SelfHeal)
	elemHandoff   = "Handoff"  // lease-table handoff to the successor (SelfHeal)
	elemRedirect  = "Redirect" // "id addr" of the successor to re-lease with
	elemRumor     = "Rumor"    // repeated: gossiped tier rumor "id addr sig" (IslandMerge)
	elemMergeRst  = "MergeR"   // merge reconciliation: sender's client roster (IslandMerge)
	elemTierProbe = "TProbe"   // tier probe: "is the rumored peer (near) a rendezvous?"
	elemTierAck   = "TAck"     // tier probe answer, carrying a rumor to merge with
)

// Walk protocol elements, namespace "walk".
const (
	walkNS      = "walk"
	elemDir     = "Dir" // "up" or "down"
	elemTTL     = "TTL"
	elemSvc     = "Svc"    // target endpoint service at each hop
	elemPayload = "Body"   // embedded message bytes
	elemOrigin  = "Origin" // originating peer (dedup / diagnostics)
	elemWalkID  = "WID"    // walk instance ID
)

// Direction of a peerview walk.
type Direction int

// Walk directions along the ID-sorted peerview.
const (
	Up Direction = iota
	Down
)

// String names the direction.
func (d Direction) String() string {
	if d == Up {
		return "up"
	}
	return "down"
}

// PromotionPolicy selects the successor among the last-known client roster
// when edges detect that no rendezvous is reachable. Every client runs the
// same policy over (a snapshot of) the same roster, so the election needs no
// extra messages and is deterministic under a fixed seed.
type PromotionPolicy int

// Promotion policies.
const (
	// PromoteLowestID promotes the roster client with the smallest peer ID
	// (the default; mirrors the peerview's ID-order bias).
	PromoteLowestID PromotionPolicy = iota
	// PromoteHighestID promotes the roster client with the largest peer ID.
	PromoteHighestID
)

// Config tunes the lease protocol.
type Config struct {
	// LeaseDuration is how long a granted lease lasts (default 20 min,
	// mirroring JXTA-C).
	LeaseDuration time.Duration
	// RenewFraction of the lease after which the edge renews (default 0.5).
	RenewFraction float64
	// ResponseTimeout bounds the wait for a lease grant before the edge
	// fails over to the next seed (default 15 s).
	ResponseTimeout time.Duration
	// FailoverAttempts bounds *consecutive* unanswered lease requests: after
	// this many the edge stops hammering dead candidates (default 8). What
	// happens next depends on SelfHeal — a self-healing edge runs the
	// successor election; otherwise it goes dormant until Connect/AddSeed.
	FailoverAttempts int
	// SelfHeal enables the self-healing machinery: grants carry alternates
	// and the client roster, requests carry the edge's address, exhausted
	// failover runs the promotion election, and a graceful Stop hands the
	// lease table off to a successor. Off by default — the wire format and
	// timer sequence of the paper-faithful protocol stay bit-identical.
	SelfHeal bool
	// Promotion picks the successor among the client roster (SelfHeal).
	Promotion PromotionPolicy
	// IslandMerge enables gossip-driven merging of fragmented rendezvous
	// islands: lease requests and grants piggyback checksummed "tier rumor"
	// records naming every rendezvous the sender ever heard of, so an edge
	// that contacted two islands bridges them — its rendezvous learns of
	// the foreign anchor, runs the deterministic peerview merge handshake,
	// re-replicates SRDI tuples over the merged view and reconciles
	// duplicate client leases (lowest-ID rendezvous wins, losers redirect).
	// Off by default: no rumor element leaves the peer and no merge is ever
	// initiated, keeping the SelfHeal-only wire format byte-identical.
	// Usually enabled together with SelfHeal (islands form through
	// promotion), but functional without it.
	IslandMerge bool
	// RumorDeadSweeps bounds the IslandMerge rumor store on long-lived
	// deployments: an identity that is neither a peerview member nor a
	// leased client for this many consecutive client sweeps (every
	// LeaseDuration/4) is evicted — and with it the periodic tier probe
	// retryMerges keeps sending to that identity, so a confirmed-dead
	// rumor stops consuming probe traffic after N sweeps (the PR 5
	// "anchors probe dead identities forever" limit). Re-gossip of the
	// identity restarts its clock, so only rumors the whole overlay
	// stopped mentioning age out; a dormant edge revives on the first
	// probe it answers, well inside the grace window. 0 (the zero value)
	// selects the default of DefaultRumorDeadSweeps; a negative value
	// disables aging entirely, restoring the unbounded PR 5 behaviour.
	RumorDeadSweeps int
}

// DefaultRumorDeadSweeps is the default rumor aging horizon: an identity
// that answers nothing — not a view member, not a leased client, never
// re-gossiped — for this many consecutive client sweeps (each
// LeaseDuration/4) is retired from the rumor store and stops being tier
// probed. Four sweeps is one full LeaseDuration: every live peer renews a
// lease (and so re-gossips or re-appears) at least once inside that window,
// while a dormant edge only needs to answer one probe to revive.
const DefaultRumorDeadSweeps = 4

// DefaultConfig returns JXTA-C-like lease tunables.
func DefaultConfig() Config {
	return Config{
		LeaseDuration:    20 * time.Minute,
		RenewFraction:    0.5,
		ResponseTimeout:  15 * time.Second,
		FailoverAttempts: 8,
		RumorDeadSweeps:  DefaultRumorDeadSweeps,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.LeaseDuration <= 0 {
		c.LeaseDuration = d.LeaseDuration
	}
	if c.RenewFraction <= 0 || c.RenewFraction >= 1 {
		c.RenewFraction = d.RenewFraction
	}
	if c.ResponseTimeout <= 0 {
		c.ResponseTimeout = d.ResponseTimeout
	}
	if c.FailoverAttempts <= 0 {
		c.FailoverAttempts = d.FailoverAttempts
	}
	if c.RumorDeadSweeps == 0 {
		c.RumorDeadSweeps = d.RumorDeadSweeps
	}
	return c
}

// Caps on the state snapshots a grant carries, bounding message growth on
// large overlays.
const (
	maxAlternates = 8
	maxRoster     = 16
	// maxRumors caps the tier rumors piggybacked per lease message
	// (IslandMerge). Generous relative to maxAlternates: a starved rumor
	// list could permanently hide the one cross-island identity that would
	// have bridged two islands.
	maxRumors = 16
)

// WalkHandler consumes a walked message at each visited rendezvous. Returning
// true stops the walk at this peer (the walk found what it was looking for).
type WalkHandler func(origin ids.ID, dir Direction, body *message.Message) (stop bool)

// LeaseListener observes edge connectivity changes.
type LeaseListener func(rdv ids.ID, connected bool)

// StateExporter supplies extra handoff payloads for a graceful stop: the
// messages are delivered to the successor at the named endpoint service.
// Discovery registers one exporting the SRDI index as a standard push, so
// the successor both indexes and re-replicates every tuple.
type StateExporter func() (svc string, msgs []*message.Message)

// clientLease is one granted lease at a rendezvous.
type clientLease struct {
	expires time.Duration
	addr    string // transport address, when the edge shared it (SelfHeal)
}

// Service is the rendezvous service of one peer, in either role.
type Service struct {
	env env.Env
	ep  *endpoint.Endpoint
	cfg Config

	// Rendezvous role.
	pv           *peerview.PeerView // nil on edges
	clients      map[ids.ID]clientLease
	clientSweep  *env.Ticker
	walkHandlers map[string]WalkHandler
	walkSeen     map[string]bool
	nextWalkID   uint64

	// Edge role.
	seeds       []peerview.Seed
	seedIdx     int
	connectedTo ids.ID
	bootTimer   env.Timer // the immediate first lease request armed by Start
	renewTimer  env.Timer
	grantTimer  env.Timer
	listeners   []LeaseListener
	started     bool

	// Self-healing state (SelfHeal).
	alternates   []peerview.Seed // rendezvous' peerview, from the last grant
	roster       []peerview.Seed // co-clients of the lease holder, sorted by ID
	failCount    int             // unanswered lease requests in the current phase
	episodeFails int             // unanswered requests since the last grant
	awaitingSucc bool            // targeting the elected successor exclusively
	succTarget   peerview.Seed
	dormant      bool // failover budget exhausted; Connect revives
	promoteFn    func()
	exporter     StateExporter

	// Island-merge state (IslandMerge). The rumor store accumulates every
	// rendezvous identity this peer ever learned — lease holders, grant
	// alternates, elected successors, redirect targets, client rumors —
	// and survives promotion, so a freshly promoted anchor immediately
	// tries to merge with every island it heard of as an edge.
	rumors     *peerview.RumorStore
	mergeTried map[ids.ID]time.Duration // merge-initiation dedup/backoff
	mergeFns   []func(peer ids.ID)      // merge-completion observers

	// Merges counts completed merge handshake legs at this peer.
	Merges int

	// Promotions counts edge→rendezvous role switches this service went
	// through (diagnostics; at most 1 unless the node is Reset between).
	Promotions int

	// m holds the runtime instruments (always non-nil: newService
	// pre-instruments, node.New re-instruments with the node's registry);
	// trace receives rare protocol transitions and may be nil.
	m     *rdvMetrics
	trace *metrics.Trace

	// frozen implements edge hibernation; see hibernate.go. While non-nil
	// the maps and self-healing slices above live in the packed record.
	frozen *rdvFrozen
}

func newService(e env.Env, ep *endpoint.Endpoint, cfg Config) *Service {
	s := &Service{
		env:          e,
		ep:           ep,
		cfg:          cfg.withDefaults(),
		clients:      make(map[ids.ID]clientLease),
		walkHandlers: make(map[string]WalkHandler),
		walkSeen:     make(map[string]bool),
		rumors:       peerview.NewRumorStore(),
		mergeTried:   make(map[ids.ID]time.Duration),
	}
	ep.Register(LeaseService, s.receiveLease)
	ep.Register(WalkService, s.receiveWalk)
	s.Instrument(metrics.Discard(), nil)
	return s
}

// NewRendezvous builds the service in the rendezvous role, bound to the
// peer's peerview.
func NewRendezvous(e env.Env, ep *endpoint.Endpoint, pv *peerview.PeerView, cfg Config) *Service {
	s := newService(e, ep, cfg)
	s.pv = pv
	if s.cfg.IslandMerge {
		pv.SetMergeListener(s.onPeerviewMerge)
	}
	return s
}

// NewEdge builds the service in the edge role with the given rendezvous
// seeds (tried in order, wrapping around, on connect/failover). The edge can
// later be promoted in place (Promote).
func NewEdge(e env.Env, ep *endpoint.Endpoint, seeds []peerview.Seed, cfg Config) *Service {
	s := newService(e, ep, cfg)
	s.seeds = seeds
	return s
}

// IsRendezvous reports the current role.
func (s *Service) IsRendezvous() bool { return s.pv != nil }

// PeerView exposes the peerview (nil for edges).
func (s *Service) PeerView() *peerview.PeerView { return s.pv }

// AddLeaseListener registers an edge connectivity observer. Multiple
// listeners are supported (the discovery service and the application may
// both care about lease changes).
func (s *Service) AddLeaseListener(l LeaseListener) {
	s.listeners = append(s.listeners, l)
}

// SetPromoteHook installs the role-switch callback the successor election
// and the handoff path invoke: it must promote the owning node to the
// rendezvous role synchronously (node.Node.PromoteToRendezvous wires in
// here). Promotion is skipped when no hook is installed.
func (s *Service) SetPromoteHook(fn func()) { s.promoteFn = fn }

// SetStateExporter installs the graceful-handoff state supplier (one per
// service; discovery owns it in the assembled node).
func (s *Service) SetStateExporter(e StateExporter) { s.exporter = e }

// AddMergeListener registers a merge-completion observer (IslandMerge):
// it fires once per completed handshake leg with the counterpart's ID,
// after the peerview union. The node hooks SRDI re-replication and the
// deployment-layer OnMerge callback here.
func (s *Service) AddMergeListener(fn func(peer ids.ID)) {
	s.mergeFns = append(s.mergeFns, fn)
}

// Rumors returns the accumulated tier rumors in ascending ID order
// (diagnostics and tests).
func (s *Service) Rumors() []peerview.Rumor { return s.rumors.All() }

// learnRumor ingests one verified tier rumor: store it for onward gossip
// and, in the rendezvous role, consider probing the rumored peer.
func (s *Service) learnRumor(r peerview.Rumor) {
	if r.ID.Equal(s.ep.ID()) {
		return
	}
	s.rumors.Add(r)
	s.maybeMerge(r.Seed)
}

// selfRumor is this peer's own checksummed tier record.
func (s *Service) selfRumor() peerview.Rumor {
	return peerview.NewRumor(peerview.Seed{ID: s.ep.ID(), Addr: s.ep.Addr()})
}

// maybeMerge sends a tier probe to a rumored peer, unless it is already a
// view member or was probed recently. The probe — not a direct merge — is
// what makes *every* remembered identity a potential bridge: a rendezvous
// answers with itself, a leased edge answers with its island's anchor, and
// a dead peer answers nothing. The retry backoff is one renewal period: a
// peer that is dead or still an edge now may anchor an island later, and
// the periodic retry (retryMerges) keeps asking.
func (s *Service) maybeMerge(sd peerview.Seed) {
	if !s.cfg.IslandMerge || !s.IsRendezvous() || !s.started {
		return
	}
	if sd.ID.Equal(s.ep.ID()) || s.pv.Contains(sd.ID) {
		return
	}
	retry := time.Duration(float64(s.cfg.LeaseDuration) * s.cfg.RenewFraction)
	now := s.env.Now()
	if at, tried := s.mergeTried[sd.ID]; tried && now-at < retry {
		return
	}
	s.mergeTried[sd.ID] = now
	if sd.Addr != "" {
		s.ep.AddRoute(sd.ID, sd.Addr)
	}
	m := message.New().AddString(leaseNS, elemTierProbe, "1")
	m.AddString(leaseNS, elemRumor, s.selfRumor().Encode())
	_ = s.ep.Send(sd.ID, LeaseService, m)
}

// retryMerges re-probes every rumored identity not yet in the view (rate
// limited per target by maybeMerge). This is the convergence engine for an
// island nobody leases with: its anchor keeps asking everyone it ever heard
// of — co-clients from old rosters included — until one of them answers or
// redirects it to a live anchor.
func (s *Service) retryMerges() {
	for _, r := range s.rumors.All() {
		s.maybeMerge(r.Seed)
	}
}

// receiveTierProbe answers a tier probe: a rendezvous names itself, an edge
// holding a lease names its anchor — redirecting the prober to this
// island's rendezvous. Either way the prober's own identity is remembered
// (and, on an edge, gossiped onward at the next renewal), so probing a
// foreign island makes this island learn the prober in return.
func (s *Service) receiveTierProbe(src ids.ID, m *message.Message) {
	if !s.started || !s.cfg.IslandMerge {
		return
	}
	prober, proberOK := peerview.ParseRumor(m.GetString(leaseNS, elemRumor))
	if proberOK = proberOK && prober.ID.Equal(src); proberOK {
		s.learnRumor(prober)
	}
	var answer peerview.Rumor
	switch {
	case s.IsRendezvous():
		answer = s.selfRumor()
	case !s.connectedTo.IsNil():
		sd := s.tierSeed(s.connectedTo)
		if sd.Addr == "" {
			return // anchor's address unknown: nothing useful to answer
		}
		answer = peerview.NewRumor(sd)
	case s.dormant && proberOK:
		// Only rendezvous send tier probes, so this probe proves a live
		// anchor exists: treat it like a redirect and revive with a fresh
		// budget. The woken edge then gossips its old island's identities
		// to the prober on its first renewal — dormant peers are bridges
		// too, they just need waking.
		s.succTarget = prober.Seed
		s.awaitingSucc = true
		s.failCount = 0
		s.episodeFails = 0
		s.dormant = false
		s.requestLease()
		return
	default:
		return // mid-failover edge: already looking for a lease
	}
	rsp := message.New().AddString(leaseNS, elemTierAck, "1")
	rsp.AddString(leaseNS, elemRumor, answer.Encode())
	_ = s.ep.Send(src, LeaseService, rsp)
}

// receiveTierAck consumes a tier probe answer: an answer naming the sender
// is a confirmed live rendezvous — merge with it now; an answer naming a
// third peer is a redirect to that island's anchor — learn it and let the
// probe cycle reach it.
func (s *Service) receiveTierAck(src ids.ID, m *message.Message) {
	if !s.started || !s.cfg.IslandMerge || !s.IsRendezvous() {
		return
	}
	r, ok := peerview.ParseRumor(m.GetString(leaseNS, elemRumor))
	if !ok || r.ID.Equal(s.ep.ID()) {
		return
	}
	s.rumors.Add(r)
	if !r.ID.Equal(src) {
		s.maybeMerge(r.Seed) // redirect: probe the named anchor next
		return
	}
	if !s.pv.Contains(r.ID) {
		s.mergeTried[r.ID] = s.env.Now()
		s.pv.Merge(r.Seed)
	}
}

// onPeerviewMerge completes a merge handshake leg at the rendezvous level:
// remember the counterpart for onward gossip, send it our client roster so
// both sides can reconcile duplicate leases, and notify the observers
// (SRDI re-replication, deployment hooks).
func (s *Service) onPeerviewMerge(peer ids.ID) {
	if !s.cfg.IslandMerge || !s.IsRendezvous() || !s.started {
		return
	}
	s.Merges++
	s.traceEvent("island-merge", peer)
	sd := s.tierSeed(peer)
	if sd.Addr != "" {
		s.rumors.AddSeed(sd)
	}
	s.sendMergeRoster(peer)
	for _, fn := range s.mergeFns {
		fn(peer)
	}
}

// tierSeed resolves a tier member's address from the peerview (post-merge
// the counterpart is a member) or the rumor store.
func (s *Service) tierSeed(id ids.ID) peerview.Seed {
	if s.pv != nil {
		for _, mb := range s.pv.Members() {
			if mb.ID.Equal(id) {
				return mb
			}
		}
	}
	for _, r := range s.rumors.All() {
		if r.ID.Equal(id) {
			return r.Seed
		}
	}
	return peerview.Seed{ID: id}
}

// sendMergeRoster ships this rendezvous' fresh client roster to the merge
// counterpart for duplicate-lease reconciliation.
func (s *Service) sendMergeRoster(peer ids.ID) {
	m := message.New().AddString(leaseNS, elemMergeRst, "1")
	n := 0
	now := s.env.Now()
	for _, id := range s.Clients() {
		cl := s.clients[id]
		if cl.addr == "" || cl.expires <= now || id.Equal(peer) {
			continue
		}
		m.AddString(leaseNS, elemClient, encodeSeed(peerview.Seed{ID: id, Addr: transport.Addr(cl.addr)}))
		n++
	}
	if n == 0 {
		return // nothing to reconcile from this side
	}
	_ = s.ep.Send(peer, LeaseService, m)
}

// receiveMergeRoster reconciles duplicate client leases after a merge: for
// every client leased at both rendezvous, the lowest-ID rendezvous wins —
// the higher-ID one drops its (possibly stale, adopted) entry and redirects
// the client to the winner, exactly the mechanism a graceful handoff uses.
// Each side handles only its own losing case; the winner keeps serving.
func (s *Service) receiveMergeRoster(src ids.ID, m *message.Message) {
	if !s.started || !s.cfg.IslandMerge || !s.IsRendezvous() {
		return
	}
	iLose := src.Less(s.ep.ID())
	now := s.env.Now()
	winner := encodeSeed(s.tierSeed(src))
	for _, el := range m.Elements() {
		if el.Namespace != leaseNS || el.Name != elemClient {
			continue
		}
		sd, ok := parseSeed(string(el.Data))
		if !ok || sd.ID.Equal(s.ep.ID()) {
			continue
		}
		cl, dup := s.clients[sd.ID]
		if !dup || cl.expires <= now {
			continue
		}
		if !iLose {
			continue // the counterpart drops and redirects when it sees our roster
		}
		delete(s.clients, sd.ID)
		if cl.addr != "" {
			s.ep.AddRoute(sd.ID, transport.Addr(cl.addr))
		}
		rm := message.New().AddString(leaseNS, elemRedirect, winner)
		_ = s.ep.Send(sd.ID, LeaseService, rm)
	}
}

// SetWalkHandler installs the per-hop consumer for walked messages addressed
// to the given target service (rendezvous role). Each service owning a walk
// protocol — discovery's LC-DHT fallback, the pipe propagation machinery —
// registers its own handler; the walk envelope's Svc element selects it at
// every hop. Handlers may be installed while the peer is still an edge;
// they only run once it holds the rendezvous role.
func (s *Service) SetWalkHandler(svc string, h WalkHandler) {
	s.thaw()
	s.walkHandlers[svc] = h
}

// Promote switches an edge-role service to the rendezvous role in place,
// adopting the given (freshly built) peerview: edge lease timers are
// canceled, the lease connection is dropped and the client sweep starts if
// the service is running. The endpoint services and walk handlers were
// registered at construction, so after Promote the peer grants leases,
// relays walks and joins the peerview gossip immediately.
func (s *Service) Promote(pv *peerview.PeerView) {
	s.thaw()
	if s.IsRendezvous() || pv == nil {
		return
	}
	s.cancelTimers()
	s.awaitingSucc = false
	s.dormant = false
	s.failCount = 0
	s.episodeFails = 0
	if !s.connectedTo.IsNil() {
		s.setConnected(ids.Nil)
	}
	s.pv = pv
	s.Promotions++
	s.traceEvent("promotion", ids.Nil)
	if s.started {
		s.clientSweep = env.NewTicker(s.env, s.cfg.LeaseDuration/4, s.sweepClients)
	}
	if s.cfg.IslandMerge {
		pv.SetMergeListener(s.onPeerviewMerge)
		// Everything this peer heard of as an edge is a merge candidate
		// now: a promoted anchor that once contacted another island (or an
		// elected successor that promoted elsewhere) bridges immediately.
		for _, r := range s.rumors.All() {
			s.maybeMerge(r.Seed)
		}
	}
}

// AdoptClients imports a client roster into the lease table (successor
// takeover after a crash): each client is granted an implicit lease so
// propagation fan-out reaches it before it re-leases explicitly.
func (s *Service) AdoptClients(roster []peerview.Seed, dur time.Duration) {
	s.thaw()
	if !s.IsRendezvous() {
		return
	}
	if dur <= 0 {
		dur = s.cfg.LeaseDuration
	}
	for _, c := range roster {
		if c.ID.Equal(s.ep.ID()) {
			continue
		}
		if c.Addr != "" {
			s.ep.AddRoute(c.ID, c.Addr)
		}
		s.clients[c.ID] = clientLease{expires: s.env.Now() + dur, addr: string(c.Addr)}
		if s.cfg.IslandMerge {
			s.rumors.AddSeed(c)
		}
	}
}

// Alternates returns the rendezvous peerview members learned from the last
// lease grant (SelfHeal) — the seed set a promoted edge re-joins the
// rendezvous network with.
func (s *Service) Alternates() []peerview.Seed {
	s.thaw()
	out := make([]peerview.Seed, len(s.alternates))
	copy(out, s.alternates)
	return out
}

// Roster returns the last-known co-client roster (SelfHeal), sorted by ID.
func (s *Service) Roster() []peerview.Seed {
	s.thaw()
	out := make([]peerview.Seed, len(s.roster))
	copy(out, s.roster)
	return out
}

// Dormant reports whether the edge exhausted its failover budget and went
// quiet (no candidate answered and no heal path applied). Connect revives.
func (s *Service) Dormant() bool { return s.dormant }

// Start begins the role's periodic work: client sweeping for rendezvous,
// lease acquisition for edges.
func (s *Service) Start() {
	s.thaw()
	if s.started {
		return
	}
	s.started = true
	if s.IsRendezvous() {
		s.clientSweep = env.NewTicker(s.env, s.cfg.LeaseDuration/4, s.sweepClients)
		return
	}
	s.bootTimer = s.env.After(0, s.requestLease)
}

// Stop halts periodic work gracefully: every timer is canceled, an edge
// cancels its lease with the rendezvous before disconnecting, and a
// self-healing rendezvous hands its lease table (and exported service
// state) off to a successor before going silent.
func (s *Service) Stop() { s.halt(true) }

// Abort is the crash-path Stop: identical teardown, but nothing is sent —
// the rendezvous discovers the departure by lease expiry, exactly as a real
// testbed peer failure looks from outside.
func (s *Service) Abort() { s.halt(false) }

func (s *Service) halt(sendCancel bool) {
	s.thaw()
	if !s.started {
		return
	}
	s.started = false
	if sendCancel && s.cfg.SelfHeal && s.IsRendezvous() && len(s.clients) > 0 {
		s.handoff()
	}
	if s.clientSweep != nil {
		s.clientSweep.Stop()
		s.clientSweep = nil
	}
	s.cancelTimers()
	if !s.connectedTo.IsNil() {
		if sendCancel {
			m := message.New().AddString(leaseNS, elemCancelled, "1")
			_ = s.ep.Send(s.connectedTo, LeaseService, m)
		}
		s.setConnected(ids.Nil)
	}
}

func (s *Service) cancelTimers() {
	if s.bootTimer != nil {
		s.bootTimer.Cancel()
		s.bootTimer = nil
	}
	if s.renewTimer != nil {
		s.renewTimer.Cancel()
		s.renewTimer = nil
	}
	if s.grantTimer != nil {
		s.grantTimer.Cancel()
		s.grantTimer = nil
	}
}

// Reset clears the role's soft state for a cold restart: granted leases, the
// walk-dedup set and the learned self-healing snapshots are dropped and the
// edge's seed rotation rewinds to the first seed. The role itself is kept —
// a promoted peer restarts as a rendezvous. Walk instance IDs keep
// increasing — other peers' dedup sets may remember this peer's pre-restart
// walks.
func (s *Service) Reset() {
	s.thaw()
	s.clients = make(map[ids.ID]clientLease)
	s.walkSeen = make(map[string]bool)
	s.seedIdx = 0
	s.failCount = 0
	s.episodeFails = 0
	s.awaitingSucc = false
	s.succTarget = peerview.Seed{}
	s.dormant = false
	s.alternates = nil
	s.roster = nil
	s.rumors = peerview.NewRumorStore()
	s.mergeTried = make(map[ids.ID]time.Duration)
}

// --- Edge side: lease acquisition and renewal ---

// AddSeed appends a rendezvous seed at runtime (live joins that discovered
// the seed's ID via the endpoint hello).
func (s *Service) AddSeed(seed peerview.Seed) {
	s.thaw()
	s.seeds = append(s.seeds, seed)
}

// Connect (edge role) triggers an immediate lease request, e.g. after a
// late AddSeed on an already-started service. It also revives a dormant
// edge with a fresh failover budget.
func (s *Service) Connect() {
	s.thaw()
	if s.started && !s.IsRendezvous() {
		s.dormant = false
		s.awaitingSucc = false
		s.failCount = 0
		s.episodeFails = 0
		s.requestLease()
	}
}

// ConnectedRdv returns the rendezvous currently holding this edge's lease.
func (s *Service) ConnectedRdv() (ids.ID, bool) {
	return s.connectedTo, !s.connectedTo.IsNil()
}

func (s *Service) setConnected(rdv ids.ID) {
	if s.connectedTo.Equal(rdv) {
		return
	}
	old := s.connectedTo
	s.connectedTo = rdv
	if !old.IsNil() {
		s.traceEvent("lease-lost", old)
	}
	if !rdv.IsNil() {
		s.traceEvent("lease-acquired", rdv)
	}
	for _, l := range s.listeners {
		if !old.IsNil() {
			l(old, false)
		}
		if !rdv.IsNil() {
			l(rdv, true)
		}
	}
}

// candidates is the edge's failover rotation: the configured seeds followed
// by the alternates learned from lease grants (the peerview fallback).
func (s *Service) candidates() []peerview.Seed {
	if len(s.alternates) == 0 {
		return s.seeds
	}
	out := make([]peerview.Seed, 0, len(s.seeds)+len(s.alternates))
	out = append(out, s.seeds...)
	for _, alt := range s.alternates {
		dup := false
		for _, sd := range s.seeds {
			if sd.ID.Equal(alt.ID) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, alt)
		}
	}
	return out
}

// requestLease asks the current candidate for a lease and arms the failover
// timer.
func (s *Service) requestLease() {
	s.thaw()
	if !s.started || s.IsRendezvous() || s.dormant {
		return
	}
	var target peerview.Seed
	switch {
	case s.awaitingSucc:
		target = s.succTarget
	case !s.connectedTo.IsNil():
		// Renewal: stick with the current lease holder regardless of how
		// the candidate rotation shifted as alternates were learned.
		target = peerview.Seed{ID: s.connectedTo}
		for _, c := range s.candidates() {
			if c.ID.Equal(s.connectedTo) {
				target = c
				break
			}
		}
	default:
		cands := s.candidates()
		if len(cands) == 0 {
			return
		}
		target = cands[s.seedIdx%len(cands)]
	}
	if target.Addr != "" {
		s.ep.AddRoute(target.ID, target.Addr)
	}
	// A still-armed grant timer belongs to a superseded request (Connect
	// during an in-flight attempt): cancel it, or its orphaned timeout
	// would later tear down whatever lease this request establishes.
	if s.grantTimer != nil {
		s.grantTimer.Cancel()
		s.grantTimer = nil
	}
	m := message.New().AddString(leaseNS, elemRequest,
		strconv.FormatInt(int64(s.cfg.LeaseDuration), 10))
	if s.cfg.SelfHeal {
		// Share our address so the rendezvous can roster us to co-clients.
		m.AddString(leaseNS, elemAddr, string(s.ep.Addr()))
	}
	if s.cfg.IslandMerge {
		// Piggyback a rotating window of the tier identities we remember:
		// the request is the edge→rendezvous gossip channel that bridges
		// islands, and rotation guarantees every stored identity — however
		// large the store grew — reaches the rendezvous eventually.
		for _, r := range s.rumors.NextWindow(maxRumors) {
			if r.ID.Equal(target.ID) {
				continue // the target knows itself
			}
			m.AddString(leaseNS, elemRumor, r.Encode())
		}
	}
	err := s.ep.Send(target.ID, LeaseService, m)
	s.m.requests.Inc()
	tid := target.ID
	delay := s.cfg.ResponseTimeout
	if s.awaitingSucc {
		// The elected successor may detect the failure minutes after us
		// (renewal schedules differ); back off instead of burning the
		// budget before it even promotes.
		shift := s.failCount
		if shift > 3 {
			shift = 3
		}
		delay <<= uint(shift)
	}
	s.grantTimer = s.env.After(delay, func() { s.onLeaseTimeout(tid) })
	if err != nil {
		// Send failed outright; the timer will advance to the next seed.
		return
	}
}

// episodePhases bounds the total attempts of one disconnected episode, in
// units of FailoverAttempts: the initial candidate rotation plus a handful
// of elected-successor waits with rotation fallbacks in between. Past it
// the edge goes dormant no matter what — retries are hard-bounded.
const episodePhases = 8

// onLeaseTimeout fires when no grant arrived: the candidate is presumed
// dead. Drop the stale connection (if this was a renewal), rotate to the
// next candidate while the phase budget lasts, then heal — an exhausted
// successor wait prunes the dead successor from the roster and falls back
// to the rotation, so the next election picks the next candidate — or go
// dormant once the episode budget is gone.
func (s *Service) onLeaseTimeout(target ids.ID) {
	s.thaw()
	s.grantTimer = nil
	s.m.timeouts.Inc()
	s.traceEvent("lease-timeout", target)
	if s.connectedTo.Equal(target) {
		s.setConnected(ids.Nil)
	}
	s.seedIdx++
	s.failCount++
	s.episodeFails++
	if s.episodeFails >= s.cfg.FailoverAttempts*episodePhases {
		s.awaitingSucc = false
		s.dormant = true // hard stop; Connect revives with a fresh budget
		s.traceEvent("dormant", ids.Nil)
		return
	}
	if s.failCount < s.cfg.FailoverAttempts {
		s.requestLease()
		return
	}
	if s.awaitingSucc {
		// The elected successor never answered: it is dead too. Strike it
		// from the roster and fall back to the normal rotation (the
		// alternates may hold live rendezvous); when that exhausts, the
		// next election picks the next-best candidate — possibly us.
		s.awaitingSucc = false
		s.dropFromRoster(s.succTarget.ID)
		s.failCount = 0
		s.requestLease()
		return
	}
	s.electAndHeal()
}

// dropFromRoster removes a peer that failed to answer from the election
// candidate set.
func (s *Service) dropFromRoster(id ids.ID) {
	kept := s.roster[:0]
	for _, c := range s.roster {
		if !c.ID.Equal(id) {
			kept = append(kept, c)
		}
	}
	s.roster = kept
}

// electAndHeal runs the deterministic successor election over the last
// known client roster once every candidate stopped answering. The elected
// client promotes itself; everyone else re-targets it exclusively (with a
// second, backed-off attempt budget). Without SelfHeal — or without a
// roster to elect from — the edge goes dormant: retries are bounded.
func (s *Service) electAndHeal() {
	if !s.cfg.SelfHeal || len(s.roster) == 0 {
		s.dormant = true
		s.traceEvent("dormant", ids.Nil)
		return
	}
	succ := pickSuccessor(s.cfg.Promotion, s.roster)
	s.m.elections.Inc()
	s.traceEvent("election", succ.ID)
	if succ.ID.Equal(s.ep.ID()) {
		if s.promoteFn == nil {
			s.dormant = true
			return
		}
		roster := s.Roster()
		s.promoteFn() // synchronous node-level role swap
		// Adopt the co-clients we knew: they are about to re-lease here.
		s.AdoptClients(roster, 0)
		return
	}
	s.succTarget = succ
	s.awaitingSucc = true
	s.failCount = 0
	if s.cfg.IslandMerge {
		// The elected successor is a promoted-tier identity worth gossiping
		// even if it never answers us: another island may reach it.
		s.rumors.AddSeed(succ)
	}
	s.requestLease()
}

// pickSuccessor applies the promotion policy to an ID-sorted roster.
func pickSuccessor(p PromotionPolicy, roster []peerview.Seed) peerview.Seed {
	if p == PromoteHighestID {
		return roster[len(roster)-1]
	}
	return roster[0]
}

// --- Rendezvous side ---

// Clients returns the edges currently holding leases, in ascending ID order
// so fan-out paths (pipe propagation) stay deterministic under a fixed seed.
func (s *Service) Clients() []ids.ID {
	s.thaw()
	out := make([]ids.ID, 0, len(s.clients))
	for id := range s.clients {
		out = append(out, id)
	}
	ids.SortIDs(out)
	return out
}

// HasClient reports whether the edge currently leases here.
func (s *Service) HasClient(edge ids.ID) bool {
	s.thaw()
	cl, ok := s.clients[edge]
	return ok && cl.expires > s.env.Now()
}

func (s *Service) sweepClients() {
	now := s.env.Now()
	for id, cl := range s.clients {
		if cl.expires <= now {
			delete(s.clients, id)
			s.m.expired.Inc()
		}
	}
	if s.cfg.IslandMerge {
		if s.cfg.RumorDeadSweeps > 0 {
			evicted := s.rumors.Sweep(s.cfg.RumorDeadSweeps, func(id ids.ID) bool {
				return id.Equal(s.ep.ID()) || s.pv.Contains(id) || s.HasClient(id)
			})
			s.m.rumorEvicts.Add(uint64(evicted))
		}
		s.retryMerges()
	}
}

// encodeSeed renders "id addr" (transport addresses contain no spaces).
func encodeSeed(sd peerview.Seed) string {
	return sd.ID.String() + " " + string(sd.Addr)
}

// parseSeed is the inverse of encodeSeed.
func parseSeed(v string) (peerview.Seed, bool) {
	idStr, addr, found := strings.Cut(v, " ")
	if !found {
		return peerview.Seed{}, false
	}
	id, err := ids.Parse(idStr)
	if err != nil {
		return peerview.Seed{}, false
	}
	return peerview.Seed{ID: id, Addr: transport.Addr(addr)}, true
}

// appendGrantState attaches the self-healing snapshots to a lease grant:
// up to maxAlternates peerview members and up to maxRoster client roster
// entries (clients that shared an address), both in ascending ID order.
func (s *Service) appendGrantState(m *message.Message) {
	for i, member := range s.pv.Members() {
		if i >= maxAlternates {
			break
		}
		m.AddString(leaseNS, elemAlt, encodeSeed(member))
	}
	n := 0
	now := s.env.Now()
	for _, id := range s.Clients() {
		cl := s.clients[id]
		// Expired leases linger until the next sweep; rostering a dead
		// client could make every elector unanimously pick a dead
		// successor, so filter on freshness here.
		if cl.addr == "" || cl.expires <= now {
			continue
		}
		if n >= maxRoster {
			break
		}
		m.AddString(leaseNS, elemClient, encodeSeed(peerview.Seed{ID: id, Addr: transport.Addr(cl.addr)}))
		n++
	}
}

// appendGrantRumors attaches tier rumors to a lease grant (IslandMerge):
// this rendezvous itself, its current peerview members, and the rumor
// store, deduplicated in that order and capped at maxRumors — the
// rendezvous→edge half of the island gossip.
func (s *Service) appendGrantRumors(m *message.Message, src ids.ID) {
	n := 0
	seen := make(map[ids.ID]bool, maxRumors)
	emit := func(sd peerview.Seed) {
		if n >= maxRumors || sd.Addr == "" || sd.ID.Equal(src) || seen[sd.ID] {
			return
		}
		seen[sd.ID] = true
		m.AddString(leaseNS, elemRumor, peerview.NewRumor(sd).Encode())
		n++
	}
	emit(peerview.Seed{ID: s.ep.ID(), Addr: s.ep.Addr()})
	if s.pv != nil {
		for _, member := range s.pv.Members() {
			emit(member)
		}
	}
	// Draw only the budget that is left after self + members, so the
	// window cursor advances by what was actually consumed and the store's
	// tail still circulates on later grants (drawing a full window here
	// would pin small stores to the same ID-order prefix forever).
	if n < maxRumors {
		for _, r := range s.rumors.NextWindow(maxRumors - n) {
			emit(r.Seed)
		}
	}
}

// learnGrantState ingests the snapshots a self-healing grant carries,
// replacing the previous ones wholesale (the grant is authoritative).
func (s *Service) learnGrantState(m *message.Message) {
	var alts, roster []peerview.Seed
	for _, el := range m.Elements() {
		if el.Namespace != leaseNS {
			continue
		}
		switch el.Name {
		case elemAlt:
			if sd, ok := parseSeed(string(el.Data)); ok {
				alts = append(alts, sd)
				if s.cfg.IslandMerge {
					s.rumors.AddSeed(sd) // alternates are tier identities too
				}
			}
		case elemClient:
			if sd, ok := parseSeed(string(el.Data)); ok {
				roster = append(roster, sd)
				if s.cfg.IslandMerge && !sd.ID.Equal(s.ep.ID()) {
					// Co-clients are bridge pointers: any of them may end
					// up (or already be) inside another island, and a tier
					// probe to it redirects us to that island's anchor.
					s.rumors.AddSeed(sd)
				}
			}
		case elemRumor:
			if !s.cfg.IslandMerge {
				continue
			}
			if r, ok := peerview.ParseRumor(string(el.Data)); ok && !r.ID.Equal(s.ep.ID()) {
				s.rumors.Add(r)
			}
		}
	}
	if alts != nil || roster != nil {
		s.alternates = alts
		s.roster = roster
	}
}

// handoff transfers this gracefully stopping rendezvous' responsibilities:
// the client lease table (and exported service state, e.g. the SRDI index)
// go to a successor — the upper peerview neighbour when one exists, the
// elected client otherwise — and every other client is redirected to it.
func (s *Service) handoff() {
	succ, ok := s.chooseHandoffSuccessor()
	if !ok {
		return
	}
	if succ.Addr != "" {
		s.ep.AddRoute(succ.ID, succ.Addr)
	}
	// 1. The lease table. An edge successor promotes itself on receipt.
	hm := message.New().AddString(leaseNS, elemHandoff, "1")
	now := s.env.Now()
	for _, id := range s.Clients() {
		cl := s.clients[id]
		if cl.addr == "" || id.Equal(succ.ID) {
			continue
		}
		remaining := cl.expires - now
		if remaining <= 0 {
			continue
		}
		hm.AddString(leaseNS, elemClient,
			encodeSeed(peerview.Seed{ID: id, Addr: transport.Addr(cl.addr)})+
				" "+strconv.FormatInt(int64(remaining), 10))
	}
	_ = s.ep.Send(succ.ID, LeaseService, hm)
	s.m.handoffs.Inc()
	s.traceEvent("handoff", succ.ID)
	// 2. Exported service state (the SRDI index re-publish).
	if s.exporter != nil {
		if svc, msgs := s.exporter(); svc != "" {
			for _, em := range msgs {
				_ = s.ep.Send(succ.ID, svc, em)
			}
		}
	}
	// 3. Redirect the remaining fresh clients to the successor.
	rv := encodeSeed(succ)
	for _, id := range s.Clients() {
		if id.Equal(succ.ID) || s.clients[id].expires <= now {
			continue
		}
		rm := message.New().AddString(leaseNS, elemRedirect, rv)
		_ = s.ep.Send(id, LeaseService, rm)
	}
}

// chooseHandoffSuccessor prefers a live peerview member (the upper
// neighbour, wrapping to the lower) — already a rendezvous, no promotion
// needed — and falls back to electing one of the fresh clients (expired
// leases may belong to dead peers).
func (s *Service) chooseHandoffSuccessor() (succ peerview.Seed, ok bool) {
	lower, upper := s.pv.Neighbors()
	want := upper
	if want.IsNil() {
		want = lower
	}
	if !want.IsNil() {
		for _, member := range s.pv.Members() {
			if member.ID.Equal(want) {
				return member, true
			}
		}
	}
	var roster []peerview.Seed
	now := s.env.Now()
	for _, id := range s.Clients() {
		if cl := s.clients[id]; cl.addr != "" && cl.expires > now {
			roster = append(roster, peerview.Seed{ID: id, Addr: transport.Addr(cl.addr)})
		}
	}
	if len(roster) == 0 {
		return peerview.Seed{}, false
	}
	return pickSuccessor(s.cfg.Promotion, roster), true
}

// receiveLease handles both sides of the lease protocol. Grant and renewal
// processing is gated on the running state — a stopped peer must neither
// serve leases nor arm a renewal timer off a late grant (the leak-free
// teardown contract); only the state-shedding Cancel branch always runs.
func (s *Service) receiveLease(src ids.ID, m *message.Message) {
	s.thaw()
	if req := m.GetString(leaseNS, elemRequest); req != "" {
		if !s.started || !s.IsRendezvous() {
			return // edges and stopped peers do not grant leases
		}
		dur := s.cfg.LeaseDuration
		if v, err := strconv.ParseInt(req, 10, 64); err == nil && v > 0 && time.Duration(v) < dur {
			dur = time.Duration(v)
		}
		if _, renewal := s.clients[src]; renewal {
			s.m.renewed.Inc()
		} else {
			s.m.granted.Inc()
		}
		s.clients[src] = clientLease{
			expires: s.env.Now() + dur,
			addr:    m.GetString(leaseNS, elemAddr),
		}
		if s.cfg.IslandMerge {
			for _, el := range m.Elements() {
				if el.Namespace != leaseNS || el.Name != elemRumor {
					continue
				}
				if r, ok := peerview.ParseRumor(string(el.Data)); ok {
					s.learnRumor(r)
				}
			}
		}
		rsp := message.New().AddString(leaseNS, elemGranted,
			strconv.FormatInt(int64(dur), 10))
		if s.cfg.SelfHeal {
			s.appendGrantState(rsp)
		}
		if s.cfg.IslandMerge {
			s.appendGrantRumors(rsp, src)
		}
		_ = s.ep.Send(src, LeaseService, rsp)
		return
	}
	if m.GetString(leaseNS, elemCancelled) != "" {
		if _, held := s.clients[src]; held {
			s.m.cancelled.Inc()
		}
		delete(s.clients, src)
		return
	}
	if m.GetString(leaseNS, elemHandoff) != "" {
		s.receiveHandoff(m)
		return
	}
	if m.GetString(leaseNS, elemMergeRst) != "" {
		s.receiveMergeRoster(src, m)
		return
	}
	if m.GetString(leaseNS, elemTierProbe) != "" {
		s.receiveTierProbe(src, m)
		return
	}
	if m.GetString(leaseNS, elemTierAck) != "" {
		s.receiveTierAck(src, m)
		return
	}
	if red := m.GetString(leaseNS, elemRedirect); red != "" {
		s.receiveRedirect(src, red)
		return
	}
	if granted := m.GetString(leaseNS, elemGranted); granted != "" {
		if !s.started || s.IsRendezvous() {
			return // grant raced our Stop or promotion: arm nothing
		}
		v, err := strconv.ParseInt(granted, 10, 64)
		if err != nil || v <= 0 {
			return
		}
		if s.grantTimer != nil {
			s.grantTimer.Cancel()
			s.grantTimer = nil
		}
		s.failCount = 0
		s.episodeFails = 0
		s.awaitingSucc = false
		s.dormant = false
		s.setConnected(src)
		s.learnGrantState(m)
		renewIn := time.Duration(float64(v) * s.cfg.RenewFraction)
		if s.renewTimer != nil {
			s.renewTimer.Cancel()
		}
		s.renewTimer = s.env.After(renewIn, func() {
			if s.started {
				s.requestLease()
			}
		})
	}
}

// receiveHandoff imports a predecessor's lease table. An edge promotes
// itself first (the gracefully stopping rendezvous elected us successor).
func (s *Service) receiveHandoff(m *message.Message) {
	if !s.started || !s.cfg.SelfHeal {
		return
	}
	if !s.IsRendezvous() {
		if s.promoteFn == nil {
			return
		}
		s.promoteFn()
		if !s.IsRendezvous() {
			return
		}
	}
	now := s.env.Now()
	for _, el := range m.Elements() {
		if el.Namespace != leaseNS || el.Name != elemClient {
			continue
		}
		fields := strings.Fields(string(el.Data))
		if len(fields) != 3 {
			continue
		}
		sd, ok := parseSeed(fields[0] + " " + fields[1])
		if !ok || sd.ID.Equal(s.ep.ID()) {
			continue
		}
		remaining, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil || remaining <= 0 {
			continue
		}
		s.ep.AddRoute(sd.ID, sd.Addr)
		s.clients[sd.ID] = clientLease{
			expires: now + time.Duration(remaining),
			addr:    string(sd.Addr),
		}
	}
}

// receiveRedirect re-targets this edge's lease at the successor a
// gracefully stopping rendezvous (SelfHeal) or a merge reconciliation
// loser (IslandMerge) named — accepted whenever either machinery that can
// send redirects is enabled.
func (s *Service) receiveRedirect(src ids.ID, val string) {
	if !s.started || !(s.cfg.SelfHeal || s.cfg.IslandMerge) || s.IsRendezvous() {
		return
	}
	succ, ok := parseSeed(val)
	if !ok || succ.ID.Equal(s.ep.ID()) {
		return
	}
	s.cancelTimers()
	s.m.redirects.Inc()
	s.traceEvent("redirect", succ.ID)
	if s.connectedTo.Equal(src) {
		s.setConnected(ids.Nil)
	}
	s.succTarget = succ
	s.awaitingSucc = true
	s.failCount = 0
	s.dormant = false
	if s.cfg.IslandMerge {
		s.rumors.AddSeed(succ)
	}
	s.requestLease()
}

// --- Propagation protocol: the directional walker ---

// Walk sends body to the walk handler of up to ttl successive rendezvous
// peers in the given direction along this peer's view of the ID order. The
// local peer is not visited. Rendezvous role only.
func (s *Service) Walk(dir Direction, ttl int, svc string, body *message.Message) {
	if !s.IsRendezvous() || ttl <= 0 {
		return
	}
	s.m.walks.Inc()
	lower, upper := s.pv.Neighbors()
	next := upper
	if dir == Down {
		next = lower
	}
	if next.IsNil() {
		return
	}
	s.nextWalkID++
	wid := s.ep.ID().Short() + "-" + strconv.FormatUint(s.nextWalkID, 10)
	s.forwardWalk(next, dir, ttl, wid, svc, body)
}

func (s *Service) forwardWalk(to ids.ID, dir Direction, ttl int, wid, svc string, body *message.Message) {
	m := message.New()
	m.AddString(walkNS, elemDir, dir.String())
	m.AddString(walkNS, elemTTL, strconv.Itoa(ttl))
	m.AddString(walkNS, elemSvc, svc)
	m.AddString(walkNS, elemOrigin, s.ep.ID().String())
	m.AddString(walkNS, elemWalkID, wid)
	m.Add(walkNS, elemPayload, body.Marshal())
	_ = s.ep.Send(to, WalkService, m)
}

// receiveWalk consumes a walked message: hand it to the walk handler, then
// forward along the same direction using *this* peer's peerview (each hop
// re-reads its own view, exactly how the LC-DHT fallback walks a partially
// consistent overlay).
func (s *Service) receiveWalk(src ids.ID, m *message.Message) {
	if !s.started || !s.IsRendezvous() {
		return // stopped peers and edges do not relay walks
	}
	dirStr := m.GetString(walkNS, elemDir)
	ttl, err := strconv.Atoi(m.GetString(walkNS, elemTTL))
	if err != nil || ttl <= 0 {
		return
	}
	wid := m.GetString(walkNS, elemWalkID)
	if wid == "" || s.walkSeen[wid] {
		return // loop guard on inconsistent views
	}
	s.walkSeen[wid] = true
	if len(s.walkSeen) > 8192 {
		s.walkSeen = make(map[string]bool) // coarse reset; walks are short-lived
	}
	originID, err := ids.Parse(m.GetString(walkNS, elemOrigin))
	if err != nil {
		return
	}
	payload, ok := m.Get(walkNS, elemPayload)
	if !ok {
		return
	}
	body, err := message.Unmarshal(payload)
	if err != nil {
		return
	}
	dir := Up
	if dirStr == Down.String() {
		dir = Down
	}
	if h := s.walkHandlers[m.GetString(walkNS, elemSvc)]; h != nil && h(originID, dir, body) {
		return // handler satisfied the walk
	}
	if ttl <= 1 {
		return
	}
	lower, upper := s.pv.Neighbors()
	next := upper
	if dir == Down {
		next = lower
	}
	if next.IsNil() || next.Equal(src) {
		return
	}
	// Re-wrap preserving the original origin and walk ID.
	fwd := message.New()
	fwd.AddString(walkNS, elemDir, dir.String())
	fwd.AddString(walkNS, elemTTL, strconv.Itoa(ttl-1))
	fwd.AddString(walkNS, elemSvc, m.GetString(walkNS, elemSvc))
	fwd.AddString(walkNS, elemOrigin, originID.String())
	fwd.AddString(walkNS, elemWalkID, wid)
	fwd.Add(walkNS, elemPayload, payload)
	_ = s.ep.Send(next, WalkService, fwd)
}
