// Package rendezvous implements the JXTA rendezvous protocol minus the
// peerview (which lives in internal/peerview): the rendezvous lease
// protocol, by which edge peers subscribe to a rendezvous peer, and the
// rendezvous propagation protocol (the walker), which moves messages across
// the ID-ordered rendezvous network (§3.2 items 2 and 3).
//
// Roles: a peer runs either as a rendezvous (super-peer, owns a peerview,
// serves leases) or as an edge (holds a lease on one rendezvous and renews
// it; fails over to another seed when the rendezvous dies).
package rendezvous

import (
	"strconv"
	"time"

	"jxta/internal/endpoint"
	"jxta/internal/env"
	"jxta/internal/ids"
	"jxta/internal/message"
	"jxta/internal/peerview"
)

// Endpoint service names.
const (
	LeaseService = "rdv.lease"
	WalkService  = "rdv.walk"
)

// Lease protocol elements, namespace "lease".
const (
	leaseNS       = "lease"
	elemRequest   = "Request" // requested duration (ns)
	elemGranted   = "Granted" // granted duration (ns)
	elemCancelled = "Cancel"  // edge departing
)

// Walk protocol elements, namespace "walk".
const (
	walkNS      = "walk"
	elemDir     = "Dir" // "up" or "down"
	elemTTL     = "TTL"
	elemSvc     = "Svc"    // target endpoint service at each hop
	elemPayload = "Body"   // embedded message bytes
	elemOrigin  = "Origin" // originating peer (dedup / diagnostics)
	elemWalkID  = "WID"    // walk instance ID
)

// Direction of a peerview walk.
type Direction int

// Walk directions along the ID-sorted peerview.
const (
	Up Direction = iota
	Down
)

// String names the direction.
func (d Direction) String() string {
	if d == Up {
		return "up"
	}
	return "down"
}

// Config tunes the lease protocol.
type Config struct {
	// LeaseDuration is how long a granted lease lasts (default 20 min,
	// mirroring JXTA-C).
	LeaseDuration time.Duration
	// RenewFraction of the lease after which the edge renews (default 0.5).
	RenewFraction float64
	// ResponseTimeout bounds the wait for a lease grant before the edge
	// fails over to the next seed (default 15 s).
	ResponseTimeout time.Duration
}

// DefaultConfig returns JXTA-C-like lease tunables.
func DefaultConfig() Config {
	return Config{
		LeaseDuration:   20 * time.Minute,
		RenewFraction:   0.5,
		ResponseTimeout: 15 * time.Second,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.LeaseDuration <= 0 {
		c.LeaseDuration = d.LeaseDuration
	}
	if c.RenewFraction <= 0 || c.RenewFraction >= 1 {
		c.RenewFraction = d.RenewFraction
	}
	if c.ResponseTimeout <= 0 {
		c.ResponseTimeout = d.ResponseTimeout
	}
	return c
}

// WalkHandler consumes a walked message at each visited rendezvous. Returning
// true stops the walk at this peer (the walk found what it was looking for).
type WalkHandler func(origin ids.ID, dir Direction, body *message.Message) (stop bool)

// LeaseListener observes edge connectivity changes.
type LeaseListener func(rdv ids.ID, connected bool)

// Service is the rendezvous service of one peer, in either role.
type Service struct {
	env env.Env
	ep  *endpoint.Endpoint
	cfg Config

	// Rendezvous role.
	pv           *peerview.PeerView // nil on edges
	clients      map[ids.ID]time.Duration
	clientSweep  *env.Ticker
	walkHandlers map[string]WalkHandler
	walkSeen     map[string]bool
	nextWalkID   uint64

	// Edge role.
	seeds       []peerview.Seed
	seedIdx     int
	connectedTo ids.ID
	bootTimer   env.Timer // the immediate first lease request armed by Start
	renewTimer  env.Timer
	grantTimer  env.Timer
	listeners   []LeaseListener
	started     bool
}

// NewRendezvous builds the service in the rendezvous role, bound to the
// peer's peerview.
func NewRendezvous(e env.Env, ep *endpoint.Endpoint, pv *peerview.PeerView, cfg Config) *Service {
	s := &Service{
		env:          e,
		ep:           ep,
		cfg:          cfg.withDefaults(),
		pv:           pv,
		clients:      make(map[ids.ID]time.Duration),
		walkHandlers: make(map[string]WalkHandler),
		walkSeen:     make(map[string]bool),
	}
	ep.Register(LeaseService, s.receiveLease)
	ep.Register(WalkService, s.receiveWalk)
	return s
}

// NewEdge builds the service in the edge role with the given rendezvous
// seeds (tried in order, wrapping around, on connect/failover).
func NewEdge(e env.Env, ep *endpoint.Endpoint, seeds []peerview.Seed, cfg Config) *Service {
	s := &Service{
		env:   e,
		ep:    ep,
		cfg:   cfg.withDefaults(),
		seeds: seeds,
	}
	ep.Register(LeaseService, s.receiveLease)
	return s
}

// IsRendezvous reports the role.
func (s *Service) IsRendezvous() bool { return s.pv != nil }

// PeerView exposes the peerview (nil for edges).
func (s *Service) PeerView() *peerview.PeerView { return s.pv }

// AddLeaseListener registers an edge connectivity observer. Multiple
// listeners are supported (the discovery service and the application may
// both care about lease changes).
func (s *Service) AddLeaseListener(l LeaseListener) {
	s.listeners = append(s.listeners, l)
}

// SetWalkHandler installs the per-hop consumer for walked messages addressed
// to the given target service (rendezvous role). Each service owning a walk
// protocol — discovery's LC-DHT fallback, the pipe propagation machinery —
// registers its own handler; the walk envelope's Svc element selects it at
// every hop.
func (s *Service) SetWalkHandler(svc string, h WalkHandler) {
	s.walkHandlers[svc] = h
}

// Start begins the role's periodic work: client sweeping for rendezvous,
// lease acquisition for edges.
func (s *Service) Start() {
	if s.started {
		return
	}
	s.started = true
	if s.IsRendezvous() {
		s.clientSweep = env.NewTicker(s.env, s.cfg.LeaseDuration/4, s.sweepClients)
		return
	}
	s.bootTimer = s.env.After(0, s.requestLease)
}

// Stop halts periodic work gracefully: every timer is canceled and an edge
// cancels its lease with the rendezvous before disconnecting.
func (s *Service) Stop() { s.halt(true) }

// Abort is the crash-path Stop: identical teardown, but nothing is sent —
// the rendezvous discovers the departure by lease expiry, exactly as a real
// testbed peer failure looks from outside.
func (s *Service) Abort() { s.halt(false) }

func (s *Service) halt(sendCancel bool) {
	if !s.started {
		return
	}
	s.started = false
	if s.clientSweep != nil {
		s.clientSweep.Stop()
		s.clientSweep = nil
	}
	s.cancelTimers()
	if !s.connectedTo.IsNil() {
		if sendCancel {
			m := message.New().AddString(leaseNS, elemCancelled, "1")
			_ = s.ep.Send(s.connectedTo, LeaseService, m)
		}
		s.setConnected(ids.Nil)
	}
}

func (s *Service) cancelTimers() {
	if s.bootTimer != nil {
		s.bootTimer.Cancel()
		s.bootTimer = nil
	}
	if s.renewTimer != nil {
		s.renewTimer.Cancel()
		s.renewTimer = nil
	}
	if s.grantTimer != nil {
		s.grantTimer.Cancel()
		s.grantTimer = nil
	}
}

// Reset clears the role's soft state for a cold restart: granted leases and
// the walk-dedup set are dropped and the edge's seed rotation rewinds to the
// first seed. Walk instance IDs keep increasing — other peers' dedup sets
// may remember this peer's pre-restart walks.
func (s *Service) Reset() {
	if s.clients != nil {
		s.clients = make(map[ids.ID]time.Duration)
	}
	if s.walkSeen != nil {
		s.walkSeen = make(map[string]bool)
	}
	s.seedIdx = 0
}

// --- Edge side: lease acquisition and renewal ---

// AddSeed appends a rendezvous seed at runtime (live joins that discovered
// the seed's ID via the endpoint hello).
func (s *Service) AddSeed(seed peerview.Seed) {
	s.seeds = append(s.seeds, seed)
}

// Connect (edge role) triggers an immediate lease request, e.g. after a
// late AddSeed on an already-started service.
func (s *Service) Connect() {
	if s.started && !s.IsRendezvous() {
		s.requestLease()
	}
}

// ConnectedRdv returns the rendezvous currently holding this edge's lease.
func (s *Service) ConnectedRdv() (ids.ID, bool) {
	return s.connectedTo, !s.connectedTo.IsNil()
}

func (s *Service) setConnected(rdv ids.ID) {
	if s.connectedTo.Equal(rdv) {
		return
	}
	old := s.connectedTo
	s.connectedTo = rdv
	for _, l := range s.listeners {
		if !old.IsNil() {
			l(old, false)
		}
		if !rdv.IsNil() {
			l(rdv, true)
		}
	}
}

// requestLease asks the current seed for a lease and arms the failover
// timer.
func (s *Service) requestLease() {
	if !s.started || len(s.seeds) == 0 {
		return
	}
	seed := s.seeds[s.seedIdx%len(s.seeds)]
	s.ep.AddRoute(seed.ID, seed.Addr)
	m := message.New().AddString(leaseNS, elemRequest,
		strconv.FormatInt(int64(s.cfg.LeaseDuration), 10))
	err := s.ep.Send(seed.ID, LeaseService, m)
	target := seed.ID
	s.grantTimer = s.env.After(s.cfg.ResponseTimeout, func() {
		// No grant arrived: the rendezvous is presumed dead. Drop the
		// stale connection (if this was a renewal) and fail over to the
		// next seed.
		if s.connectedTo.Equal(target) {
			s.setConnected(ids.Nil)
		}
		s.seedIdx++
		s.requestLease()
	})
	if err != nil {
		// Send failed outright; the timer will advance to the next seed.
		return
	}
}

// --- Rendezvous side ---

// Clients returns the edges currently holding leases, in ascending ID order
// so fan-out paths (pipe propagation) stay deterministic under a fixed seed.
func (s *Service) Clients() []ids.ID {
	out := make([]ids.ID, 0, len(s.clients))
	for id := range s.clients {
		out = append(out, id)
	}
	ids.SortIDs(out)
	return out
}

// HasClient reports whether the edge currently leases here.
func (s *Service) HasClient(edge ids.ID) bool {
	expiry, ok := s.clients[edge]
	return ok && expiry > s.env.Now()
}

func (s *Service) sweepClients() {
	now := s.env.Now()
	for id, expiry := range s.clients {
		if expiry <= now {
			delete(s.clients, id)
		}
	}
}

// receiveLease handles both sides of the lease protocol. Grant and renewal
// processing is gated on the running state — a stopped peer must neither
// serve leases nor arm a renewal timer off a late grant (the leak-free
// teardown contract); only the state-shedding Cancel branch always runs.
func (s *Service) receiveLease(src ids.ID, m *message.Message) {
	if req := m.GetString(leaseNS, elemRequest); req != "" {
		if !s.started || !s.IsRendezvous() {
			return // edges and stopped peers do not grant leases
		}
		dur := s.cfg.LeaseDuration
		if v, err := strconv.ParseInt(req, 10, 64); err == nil && v > 0 && time.Duration(v) < dur {
			dur = time.Duration(v)
		}
		s.clients[src] = s.env.Now() + dur
		rsp := message.New().AddString(leaseNS, elemGranted,
			strconv.FormatInt(int64(dur), 10))
		_ = s.ep.Send(src, LeaseService, rsp)
		return
	}
	if m.GetString(leaseNS, elemCancelled) != "" {
		delete(s.clients, src)
		return
	}
	if granted := m.GetString(leaseNS, elemGranted); granted != "" {
		if !s.started {
			return // grant raced our Stop: stay disconnected, arm nothing
		}
		v, err := strconv.ParseInt(granted, 10, 64)
		if err != nil || v <= 0 {
			return
		}
		if s.grantTimer != nil {
			s.grantTimer.Cancel()
			s.grantTimer = nil
		}
		s.setConnected(src)
		renewIn := time.Duration(float64(v) * s.cfg.RenewFraction)
		if s.renewTimer != nil {
			s.renewTimer.Cancel()
		}
		s.renewTimer = s.env.After(renewIn, func() {
			if s.started {
				s.requestLease()
			}
		})
	}
}

// --- Propagation protocol: the directional walker ---

// Walk sends body to the walk handler of up to ttl successive rendezvous
// peers in the given direction along this peer's view of the ID order. The
// local peer is not visited. Rendezvous role only.
func (s *Service) Walk(dir Direction, ttl int, svc string, body *message.Message) {
	if !s.IsRendezvous() || ttl <= 0 {
		return
	}
	lower, upper := s.pv.Neighbors()
	next := upper
	if dir == Down {
		next = lower
	}
	if next.IsNil() {
		return
	}
	s.nextWalkID++
	wid := s.ep.ID().Short() + "-" + strconv.FormatUint(s.nextWalkID, 10)
	s.forwardWalk(next, dir, ttl, wid, svc, body)
}

func (s *Service) forwardWalk(to ids.ID, dir Direction, ttl int, wid, svc string, body *message.Message) {
	m := message.New()
	m.AddString(walkNS, elemDir, dir.String())
	m.AddString(walkNS, elemTTL, strconv.Itoa(ttl))
	m.AddString(walkNS, elemSvc, svc)
	m.AddString(walkNS, elemOrigin, s.ep.ID().String())
	m.AddString(walkNS, elemWalkID, wid)
	m.Add(walkNS, elemPayload, body.Marshal())
	_ = s.ep.Send(to, WalkService, m)
}

// receiveWalk consumes a walked message: hand it to the walk handler, then
// forward along the same direction using *this* peer's peerview (each hop
// re-reads its own view, exactly how the LC-DHT fallback walks a partially
// consistent overlay).
func (s *Service) receiveWalk(src ids.ID, m *message.Message) {
	if !s.started || !s.IsRendezvous() {
		return // stopped peers do not relay walks
	}
	dirStr := m.GetString(walkNS, elemDir)
	ttl, err := strconv.Atoi(m.GetString(walkNS, elemTTL))
	if err != nil || ttl <= 0 {
		return
	}
	wid := m.GetString(walkNS, elemWalkID)
	if wid == "" || s.walkSeen[wid] {
		return // loop guard on inconsistent views
	}
	s.walkSeen[wid] = true
	if len(s.walkSeen) > 8192 {
		s.walkSeen = make(map[string]bool) // coarse reset; walks are short-lived
	}
	originID, err := ids.Parse(m.GetString(walkNS, elemOrigin))
	if err != nil {
		return
	}
	payload, ok := m.Get(walkNS, elemPayload)
	if !ok {
		return
	}
	body, err := message.Unmarshal(payload)
	if err != nil {
		return
	}
	dir := Up
	if dirStr == Down.String() {
		dir = Down
	}
	if h := s.walkHandlers[m.GetString(walkNS, elemSvc)]; h != nil && h(originID, dir, body) {
		return // handler satisfied the walk
	}
	if ttl <= 1 {
		return
	}
	lower, upper := s.pv.Neighbors()
	next := upper
	if dir == Down {
		next = lower
	}
	if next.IsNil() || next.Equal(src) {
		return
	}
	// Re-wrap preserving the original origin and walk ID.
	fwd := message.New()
	fwd.AddString(walkNS, elemDir, dir.String())
	fwd.AddString(walkNS, elemTTL, strconv.Itoa(ttl-1))
	fwd.AddString(walkNS, elemSvc, m.GetString(walkNS, elemSvc))
	fwd.AddString(walkNS, elemOrigin, originID.String())
	fwd.AddString(walkNS, elemWalkID, wid)
	fwd.Add(walkNS, elemPayload, payload)
	_ = s.ep.Send(next, WalkService, fwd)
}
