package rendezvous

import (
	"jxta/internal/ids"
	"jxta/internal/metrics"
)

// rdvMetrics holds the rendezvous service's instruments.
type rdvMetrics struct {
	granted     *metrics.Counter
	renewed     *metrics.Counter
	expired     *metrics.Counter
	cancelled   *metrics.Counter
	requests    *metrics.Counter
	timeouts    *metrics.Counter
	elections   *metrics.Counter
	handoffs    *metrics.Counter
	redirects   *metrics.Counter
	walks       *metrics.Counter
	rumorEvicts *metrics.Counter
}

// Instrument (re-)registers the service's instruments on reg and attaches
// the protocol event trace. Counters:
//
//	jxta_rendezvous_leases_granted_total / _renewed_total / _expired_total /
//	_cancelled_total, jxta_rendezvous_lease_requests_total,
//	jxta_rendezvous_lease_timeouts_total, jxta_rendezvous_elections_total,
//	jxta_rendezvous_handoffs_total, jxta_rendezvous_redirects_followed_total,
//	jxta_rendezvous_walks_started_total, jxta_rendezvous_rumor_evictions_total,
//	jxta_rendezvous_promotions_total, jxta_rendezvous_merges_total
//
// plus gauges sampled at encode time: jxta_rendezvous_clients (roster
// size), jxta_rendezvous_connected (edge lease held), and
// jxta_rendezvous_rumor_store_size. The trace receives the rare protocol
// transitions: lease-acquired/lease-lost, lease-timeout, election,
// promotion, handoff, redirect and island-merge events.
func (s *Service) Instrument(reg *metrics.Registry, trace *metrics.Trace) {
	s.m = &rdvMetrics{
		granted:     reg.Counter("jxta_rendezvous_leases_granted_total", "New client leases granted."),
		renewed:     reg.Counter("jxta_rendezvous_leases_renewed_total", "Client lease renewals granted."),
		expired:     reg.Counter("jxta_rendezvous_leases_expired_total", "Client leases expired by the sweep."),
		cancelled:   reg.Counter("jxta_rendezvous_leases_cancelled_total", "Client leases cancelled by the edge."),
		requests:    reg.Counter("jxta_rendezvous_lease_requests_total", "Lease requests sent (edge role)."),
		timeouts:    reg.Counter("jxta_rendezvous_lease_timeouts_total", "Lease requests that timed out (failover trigger)."),
		elections:   reg.Counter("jxta_rendezvous_elections_total", "Successor elections run after candidate exhaustion."),
		handoffs:    reg.Counter("jxta_rendezvous_handoffs_total", "Graceful lease-state handoffs sent."),
		redirects:   reg.Counter("jxta_rendezvous_redirects_followed_total", "Redirects accepted and followed (edge role)."),
		walks:       reg.Counter("jxta_rendezvous_walks_started_total", "Directional peerview walks originated."),
		rumorEvicts: reg.Counter("jxta_rendezvous_rumor_evictions_total", "Tier rumors evicted by aging sweeps."),
	}
	reg.CounterFunc("jxta_rendezvous_promotions_total", "Edge-to-rendezvous role switches.",
		func() uint64 { return uint64(s.Promotions) })
	reg.CounterFunc("jxta_rendezvous_merges_total", "Completed island-merge handshake legs.",
		func() uint64 { return uint64(s.Merges) })
	reg.GaugeFunc("jxta_rendezvous_clients", "Edges currently holding a lease here (roster size).",
		func() float64 { return float64(len(s.clients)) })
	reg.GaugeFunc("jxta_rendezvous_connected", "1 when this edge holds a lease, 0 otherwise.",
		func() float64 {
			if s.connectedTo.IsNil() {
				return 0
			}
			return 1
		})
	reg.GaugeFunc("jxta_rendezvous_rumor_store_size", "Tier identities in the rumor store.",
		func() float64 { return float64(s.rumors.Len()) })
	s.trace = trace
}

// traceEvent records a protocol transition with the env's current
// (virtual) timestamp. Safe with a nil trace.
func (s *Service) traceEvent(typ string, peer ids.ID) {
	detail := ""
	if !peer.IsNil() {
		detail = peer.Short()
	}
	s.trace.Record(s.env.Now(), typ, detail)
}
