package jxta

import (
	"testing"
	"time"
)

func newSim(t *testing.T, r int, edges ...int) *Simulation {
	t.Helper()
	specs := make([]EdgeSpec, len(edges))
	for i, at := range edges {
		specs[i] = EdgeSpec{AttachTo: at}
	}
	sim, err := NewSimulation(SimOptions{Seed: 1, Rendezvous: r, Edges: specs})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestSimulationShape(t *testing.T) {
	sim := newSim(t, 4, 0, 3)
	if sim.NumRendezvous() != 4 || sim.NumEdges() != 2 {
		t.Fatalf("shape %d/%d", sim.NumRendezvous(), sim.NumEdges())
	}
	if !sim.Rendezvous(0).IsRendezvous() || sim.Edge(0).IsRendezvous() {
		t.Fatal("roles wrong")
	}
	if sim.Edge(0).Name() != "edge0" {
		t.Fatalf("edge name %q", sim.Edge(0).Name())
	}
	if sim.Edge(0).ID() == "" || sim.Edge(0).ID() == sim.Edge(1).ID() {
		t.Fatal("IDs wrong")
	}
}

func TestSimulationValidation(t *testing.T) {
	if _, err := NewSimulation(SimOptions{Rendezvous: 2,
		Edges: []EdgeSpec{{AttachTo: 7}}}); err == nil {
		t.Fatal("bad attachment accepted")
	}
	if _, err := NewSimulation(SimOptions{Rendezvous: 2, Topology: "mobius"}); err == nil {
		t.Fatal("bad topology accepted")
	}
}

func TestPublishDiscoverEndToEnd(t *testing.T) {
	sim := newSim(t, 6, 0, 5)
	sim.Start()
	defer sim.Stop()
	sim.Run(12 * time.Minute)

	pub, search := sim.Edge(0), sim.Edge(1)
	if !pub.Connected() || !search.Connected() {
		t.Fatal("edges not connected")
	}
	pub.PublishResource("compute-node-42", map[string]string{"Site": "rennes"})
	sim.Run(time.Minute)

	advs, elapsed, err := search.Discover("Resource", "Name", "compute-node-42", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(advs) != 1 || elapsed <= 0 {
		t.Fatalf("advs=%d elapsed=%v", len(advs), elapsed)
	}
	res, ok := advs[0].(*Resource)
	if !ok || res.Name != "compute-node-42" {
		t.Fatalf("wrong advertisement %+v", advs[0])
	}
	// Attribute search works too (after flushing the cached copy the
	// query must travel again and still succeed).
	search.FlushCache()
	advs, _, err = search.Discover("Resource", "Site", "rennes", time.Minute)
	if err != nil || len(advs) != 1 {
		t.Fatalf("attribute discovery failed: %v, %d advs", err, len(advs))
	}
}

func TestDiscoverTimeout(t *testing.T) {
	sim := newSim(t, 3, 0)
	sim.Start()
	defer sim.Stop()
	sim.Run(10 * time.Minute)
	_, _, err := sim.Edge(0).Discover("Resource", "Name", "ghost", 45*time.Second)
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestPublishPeerAdv(t *testing.T) {
	sim := newSim(t, 4, 0, 3)
	sim.Start()
	defer sim.Stop()
	sim.Run(12 * time.Minute)
	adv := sim.Edge(0).PublishPeerAdv()
	sim.Run(time.Minute)
	advs, _, err := sim.Edge(1).Discover("Peer", "Name", adv.Name, time.Minute)
	if err != nil || len(advs) != 1 {
		t.Fatalf("peer adv discovery: %v, %d advs", err, len(advs))
	}
}

func TestPeerViewSizeAccessor(t *testing.T) {
	sim := newSim(t, 5, 0)
	sim.Start()
	defer sim.Stop()
	sim.Run(12 * time.Minute)
	if got := sim.Rendezvous(0).PeerViewSize(); got != 4 {
		t.Fatalf("rendezvous view size = %d, want 4", got)
	}
	if sim.Edge(0).PeerViewSize() != -1 {
		t.Fatal("edge reported a peerview")
	}
}

func TestKillRendezvousAndMessages(t *testing.T) {
	sim := newSim(t, 4, 0)
	sim.Start()
	defer sim.Stop()
	sim.Run(5 * time.Minute)
	if sim.Messages() == 0 {
		t.Fatal("no traffic recorded")
	}
	sim.KillRendezvous(2)
	sim.Run(5 * time.Minute) // survivors keep running
}

func TestDeterministicReplay(t *testing.T) {
	run := func() time.Duration {
		sim := newSim(t, 5, 0, 4)
		sim.Start()
		defer sim.Stop()
		sim.Run(12 * time.Minute)
		sim.Edge(0).PublishResource("x", nil)
		sim.Run(time.Minute)
		_, elapsed, err := sim.Edge(1).Discover("Resource", "Name", "x", time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	if run() != run() {
		t.Fatal("same seed produced different latencies")
	}
}

func TestGrid5000Sites(t *testing.T) {
	sites := Grid5000Sites()
	if len(sites) != 9 || sites[6] != "rennes" {
		t.Fatalf("sites = %v", sites)
	}
}

func TestStartStopIdempotent(t *testing.T) {
	sim := newSim(t, 2, 0)
	sim.Start()
	sim.Start()
	sim.Run(time.Minute)
	sim.Stop()
	sim.Stop()
}

func TestDiscoverRange(t *testing.T) {
	sim := newSim(t, 6, 0, 2, 5)
	sim.Start()
	defer sim.Stop()
	sim.Run(12 * time.Minute)
	sim.Edge(0).PublishResource("small", map[string]string{"RAM": "1024"})
	sim.Edge(1).PublishResource("big", map[string]string{"RAM": "8192"})
	sim.Run(time.Minute)

	searcher := sim.Edge(2)
	advs, elapsed, err := searcher.DiscoverRange("Resource", "RAM", 500, 2000, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(advs) != 1 || advs[0].(*Resource).Name != "small" || elapsed <= 0 {
		t.Fatalf("range [500,2000]: %d advs, elapsed %v", len(advs), elapsed)
	}
	searcher.FlushCache()
	advs, _, err = searcher.DiscoverRange("Resource", "RAM", 0, 1<<40, time.Minute)
	if err != nil || len(advs) != 2 {
		t.Fatalf("full span: %v, %d advs", err, len(advs))
	}
	_, _, err = searcher.DiscoverRange("Resource", "RAM", 1<<30, 1<<31, 30*time.Second)
	if err != ErrTimeout {
		t.Fatalf("empty range err = %v, want ErrTimeout", err)
	}
}
