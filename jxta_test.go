package jxta

import (
	"bytes"
	"io"
	"testing"
	"time"
)

func newSim(t *testing.T, r int, edges ...int) *Simulation {
	t.Helper()
	specs := make([]EdgeSpec, len(edges))
	for i, at := range edges {
		specs[i] = EdgeSpec{AttachTo: at}
	}
	sim, err := NewSimulation(SimOptions{Seed: 1, Rendezvous: r, Edges: specs})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestSimulationShape(t *testing.T) {
	sim := newSim(t, 4, 0, 3)
	if sim.NumRendezvous() != 4 || sim.NumEdges() != 2 {
		t.Fatalf("shape %d/%d", sim.NumRendezvous(), sim.NumEdges())
	}
	if !sim.Rendezvous(0).IsRendezvous() || sim.Edge(0).IsRendezvous() {
		t.Fatal("roles wrong")
	}
	if sim.Edge(0).Name() != "edge0" {
		t.Fatalf("edge name %q", sim.Edge(0).Name())
	}
	if sim.Edge(0).ID() == "" || sim.Edge(0).ID() == sim.Edge(1).ID() {
		t.Fatal("IDs wrong")
	}
}

func TestSimulationValidation(t *testing.T) {
	if _, err := NewSimulation(SimOptions{Rendezvous: 2,
		Edges: []EdgeSpec{{AttachTo: 7}}}); err == nil {
		t.Fatal("bad attachment accepted")
	}
	if _, err := NewSimulation(SimOptions{Rendezvous: 2, Topology: "mobius"}); err == nil {
		t.Fatal("bad topology accepted")
	}
}

func TestPublishDiscoverEndToEnd(t *testing.T) {
	sim := newSim(t, 6, 0, 5)
	sim.Start()
	defer sim.Stop()
	sim.Run(12 * time.Minute)

	pub, search := sim.Edge(0), sim.Edge(1)
	if !pub.Connected() || !search.Connected() {
		t.Fatal("edges not connected")
	}
	pub.PublishResource("compute-node-42", map[string]string{"Site": "rennes"})
	sim.Run(time.Minute)

	advs, elapsed, err := search.Discover("Resource", "Name", "compute-node-42", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(advs) != 1 || elapsed <= 0 {
		t.Fatalf("advs=%d elapsed=%v", len(advs), elapsed)
	}
	res, ok := advs[0].(*Resource)
	if !ok || res.Name != "compute-node-42" {
		t.Fatalf("wrong advertisement %+v", advs[0])
	}
	// Attribute search works too (after flushing the cached copy the
	// query must travel again and still succeed).
	search.FlushCache()
	advs, _, err = search.Discover("Resource", "Site", "rennes", time.Minute)
	if err != nil || len(advs) != 1 {
		t.Fatalf("attribute discovery failed: %v, %d advs", err, len(advs))
	}
}

func TestDiscoverTimeout(t *testing.T) {
	sim := newSim(t, 3, 0)
	sim.Start()
	defer sim.Stop()
	sim.Run(10 * time.Minute)
	_, _, err := sim.Edge(0).Discover("Resource", "Name", "ghost", 45*time.Second)
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestPublishPeerAdv(t *testing.T) {
	sim := newSim(t, 4, 0, 3)
	sim.Start()
	defer sim.Stop()
	sim.Run(12 * time.Minute)
	adv := sim.Edge(0).PublishPeerAdv()
	sim.Run(time.Minute)
	advs, _, err := sim.Edge(1).Discover("Peer", "Name", adv.Name, time.Minute)
	if err != nil || len(advs) != 1 {
		t.Fatalf("peer adv discovery: %v, %d advs", err, len(advs))
	}
}

func TestPeerViewSizeAccessor(t *testing.T) {
	sim := newSim(t, 5, 0)
	sim.Start()
	defer sim.Stop()
	sim.Run(12 * time.Minute)
	if got := sim.Rendezvous(0).PeerViewSize(); got != 4 {
		t.Fatalf("rendezvous view size = %d, want 4", got)
	}
	if sim.Edge(0).PeerViewSize() != -1 {
		t.Fatal("edge reported a peerview")
	}
}

func TestKillRendezvousAndMessages(t *testing.T) {
	sim := newSim(t, 4, 0)
	sim.Start()
	defer sim.Stop()
	sim.Run(5 * time.Minute)
	if sim.Messages() == 0 {
		t.Fatal("no traffic recorded")
	}
	sim.KillRendezvous(2)
	sim.Run(5 * time.Minute) // survivors keep running
}

func TestDeterministicReplay(t *testing.T) {
	run := func() time.Duration {
		sim := newSim(t, 5, 0, 4)
		sim.Start()
		defer sim.Stop()
		sim.Run(12 * time.Minute)
		sim.Edge(0).PublishResource("x", nil)
		sim.Run(time.Minute)
		_, elapsed, err := sim.Edge(1).Discover("Resource", "Name", "x", time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	if run() != run() {
		t.Fatal("same seed produced different latencies")
	}
}

// TestDiscoveryOrderingDeterministic replays examples/gridresource's
// multi-publisher query — several sites publishing resources that match the
// same attribute — and asserts the merged response ordering is identical
// across two same-seed runs. The seed engine assembled responses in map
// iteration order (internal/srdi publishers, cm.Search postings), which
// flapped run to run; sorted assembly pins it.
func TestDiscoveryOrderingDeterministic(t *testing.T) {
	run := func() []string {
		sim, err := NewSimulation(SimOptions{
			Seed:       1234,
			Rendezvous: 8,
			Edges: []EdgeSpec{
				{AttachTo: 0, Name: "site-a"},
				{AttachTo: 2, Name: "site-b"},
				{AttachTo: 5, Name: "site-c"},
				{AttachTo: 7, Name: "scheduler"},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		sim.Start()
		defer sim.Stop()
		sim.Run(15 * time.Minute)
		// Three publishers register resources under the same RAM value, so
		// the searcher's merged response interleaves advertisements from
		// several peers — the exact situation whose order used to flap.
		for i := 0; i < 3; i++ {
			for j := 0; j < 2; j++ {
				sim.Edge(i).PublishResource(
					"node-"+string(rune('a'+i))+string(rune('0'+j)),
					map[string]string{"RAM": "4096"})
			}
		}
		sim.Run(time.Minute)
		scheduler := sim.Edge(3)
		scheduler.FlushCache()
		advs, _, err := scheduler.Discover("Resource", "RAM", "4096", time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		order := make([]string, len(advs))
		for i, adv := range advs {
			order[i] = adv.ID().String()
		}
		return order
	}
	first, second := run(), run()
	if len(first) == 0 {
		t.Fatal("query returned nothing")
	}
	if len(first) != len(second) {
		t.Fatalf("replay returned %d vs %d advertisements", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("response ordering diverged at %d:\n first:  %v\n second: %v",
				i, first, second)
		}
	}
}

func TestGrid5000Sites(t *testing.T) {
	sites := Grid5000Sites()
	if len(sites) != 9 || sites[6] != "rennes" {
		t.Fatalf("sites = %v", sites)
	}
}

func TestStartStopIdempotent(t *testing.T) {
	sim := newSim(t, 2, 0)
	sim.Start()
	sim.Start()
	sim.Run(time.Minute)
	sim.Stop()
	sim.Stop()
}

func TestListenDialStream(t *testing.T) {
	sim := newSim(t, 5, 0, 4)
	sim.Start()
	defer sim.Stop()
	sim.Run(12 * time.Minute)

	server, client := sim.Edge(0), sim.Edge(1)
	var got []byte
	eof := false
	if _, err := server.Listen("bulk", func(s *Stream) {
		buf := make([]byte, 32<<10)
		drain := func() {
			for {
				n, err := s.Read(buf)
				got = append(got, buf[:n]...)
				if err == io.EOF {
					eof = true
					return
				}
				if err != nil || n == 0 {
					return
				}
			}
		}
		s.OnReadable(drain)
	}); err != nil {
		t.Fatal(err)
	}
	sim.Run(time.Minute) // pipe advertisement index propagation

	stream, err := client.Dial("bulk", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("jxta-socket!"), 4096) // ~48 KiB
	rest := payload
	stream.OnWritable(func() {})
	for len(rest) > 0 {
		n, werr := stream.Write(rest)
		if werr != nil {
			t.Fatal(werr)
		}
		rest = rest[n:]
		if n == 0 {
			sim.Run(time.Second) // let acks open the window
		}
	}
	stream.Close()
	sim.Run(time.Minute)
	if !eof || !bytes.Equal(got, payload) {
		t.Fatalf("stream transfer: eof=%v got=%d want=%d bytes", eof, len(got), len(payload))
	}
	if client.SocketStats().ConnsDialed != 1 || server.SocketStats().ConnsAccepted != 1 {
		t.Fatal("socket stats not recorded")
	}
}

func TestDialUnknownName(t *testing.T) {
	sim := newSim(t, 3, 0)
	sim.Start()
	defer sim.Stop()
	sim.Run(10 * time.Minute)
	if _, err := sim.Edge(0).Dial("nobody-listens", 45*time.Second); err == nil {
		t.Fatal("dial to unknown name succeeded")
	}
}

func TestPropagateChannel(t *testing.T) {
	sim := newSim(t, 4, 0, 1, 3)
	sim.Start()
	defer sim.Stop()

	var heard [][]byte
	for _, i := range []int{1, 2} {
		if err := sim.Edge(i).JoinChannel("news", func(from string, data []byte) {
			heard = append(heard, append([]byte(nil), data...))
			if from != sim.Edge(0).ID() {
				t.Errorf("origin %s, want publisher", from)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run(12 * time.Minute)
	ch := sim.Edge(0).OpenChannel("news")
	if err := ch.Send([]byte("flash")); err != nil {
		t.Fatal(err)
	}
	sim.Run(time.Minute)
	if len(heard) != 2 {
		t.Fatalf("channel delivered %d payloads, want 2", len(heard))
	}
}

func TestDiscoverRange(t *testing.T) {
	sim := newSim(t, 6, 0, 2, 5)
	sim.Start()
	defer sim.Stop()
	sim.Run(12 * time.Minute)
	sim.Edge(0).PublishResource("small", map[string]string{"RAM": "1024"})
	sim.Edge(1).PublishResource("big", map[string]string{"RAM": "8192"})
	sim.Run(time.Minute)

	searcher := sim.Edge(2)
	advs, elapsed, err := searcher.DiscoverRange("Resource", "RAM", 500, 2000, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(advs) != 1 || advs[0].(*Resource).Name != "small" || elapsed <= 0 {
		t.Fatalf("range [500,2000]: %d advs, elapsed %v", len(advs), elapsed)
	}
	searcher.FlushCache()
	advs, _, err = searcher.DiscoverRange("Resource", "RAM", 0, 1<<40, time.Minute)
	if err != nil || len(advs) != 2 {
		t.Fatalf("full span: %v, %d advs", err, len(advs))
	}
	_, _, err = searcher.DiscoverRange("Resource", "RAM", 1<<30, 1<<31, 30*time.Second)
	if err != ErrTimeout {
		t.Fatalf("empty range err = %v, want ErrTimeout", err)
	}
}

// TestRoutingStrategyEndToEnd swaps the replica-placement strategy through
// the facade (SimOptions.Routing = "kademlia": XOR-closest instead of the
// linear position hash) and proves publish/discover still resolves — the
// strategy seam changes *where* the index lives, never whether it is found.
func TestRoutingStrategyEndToEnd(t *testing.T) {
	sim, err := NewSimulation(SimOptions{Seed: 1, Rendezvous: 6,
		Edges: []EdgeSpec{{AttachTo: 0}, {AttachTo: 5}}, Routing: "kademlia"})
	if err != nil {
		t.Fatal(err)
	}
	sim.Start()
	defer sim.Stop()
	sim.Run(12 * time.Minute)
	pub, search := sim.Edge(0), sim.Edge(1)
	if !pub.Connected() || !search.Connected() {
		t.Fatal("edges not connected")
	}
	pub.PublishResource("kad-placed-resource", nil)
	sim.Run(time.Minute)
	advs, _, err := search.Discover("Resource", "Name", "kad-placed-resource", time.Minute)
	if err != nil || len(advs) != 1 {
		t.Fatalf("discovery under kademlia placement: %v, %d advs", err, len(advs))
	}
	if _, err := NewSimulation(SimOptions{Rendezvous: 2, Routing: "bogus"}); err == nil {
		t.Fatal("unknown Routing name did not error")
	}
}
