package jxta

import (
	"testing"
	"time"
)

// islandMergeOpts is the facade acceptance scenario of the island merge:
// a four-rendezvous overlay on a fast lease clock loses its whole original
// tier to staggered crashes, fragmenting the edges into promoted islands.
func islandMergeOpts(disable bool) SimOptions {
	return SimOptions{
		Seed: 42, Rendezvous: 4, LeaseDuration: 4 * time.Minute,
		Edges: []EdgeSpec{
			{AttachTo: 0}, {AttachTo: 0}, {AttachTo: 1}, {AttachTo: 1},
			{AttachTo: 2}, {AttachTo: 2}, {AttachTo: 3}, {AttachTo: 3},
		},
		DisableIslandMerge: disable,
	}
}

func runIslandMergeScenario(t *testing.T, sim *Simulation) {
	t.Helper()
	sim.Start()
	sim.Run(20 * time.Minute)
	sim.Edge(0).PublishResource("CrossIsland", nil)
	sim.Run(2 * time.Minute)
	for i := 0; i < sim.NumRendezvous(); i++ {
		sim.Rendezvous(i).Kill()
		sim.Run(90 * time.Second)
	}
	sim.Run(45 * time.Minute)
}

// TestIslandMergeReunifiesTier: with the merge on (the default), the
// promoted islands gossip each other's anchors through the edges' shared
// lease history, OnMerge observes the handshakes, every anchor ends up in
// one tier, and a discovery query crosses the former island boundary.
func TestIslandMergeReunifiesTier(t *testing.T) {
	sim, err := NewSimulation(islandMergeOpts(false))
	if err != nil {
		t.Fatal(err)
	}
	merges := 0
	sim.OnMerge(func(p *Peer, peer string) {
		if p == nil || peer == "" {
			t.Error("merge event with missing participant")
		}
		merges++
	})
	var promoted []*Peer
	sim.OnPromotion(func(p *Peer) { promoted = append(promoted, p) })
	defer sim.Stop()
	runIslandMergeScenario(t, sim)

	if len(promoted) < 2 {
		t.Fatalf("scenario produced %d promotions, want islands (>= 2)", len(promoted))
	}
	if merges == 0 {
		t.Fatal("no merge handshake completed")
	}
	tier := 0
	for i := 0; i < sim.NumEdges(); i++ {
		if sim.Edge(i).IsRendezvous() {
			tier++
		}
	}
	for i := 0; i < sim.NumEdges(); i++ {
		p := sim.Edge(i)
		if p.IsRendezvous() && p.PeerViewSize() != tier-1 {
			t.Fatalf("edge %d anchors a separate island: view %d of %d",
				i, p.PeerViewSize(), tier-1)
		}
	}
	advs, _, err := sim.Edge(sim.NumEdges()-1).Discover("Resource", "Name", "CrossIsland", 2*time.Minute)
	if err != nil || len(advs) == 0 {
		t.Fatalf("cross-island discovery failed after merge: advs=%d err=%v", len(advs), err)
	}
}

// TestDisableIslandMerge pins the opt-out on the exact same scenario: with
// DisableIslandMerge no merge event may ever fire (and the islands stay
// fragmented — the control condition of the reunification test above).
func TestDisableIslandMerge(t *testing.T) {
	sim, err := NewSimulation(islandMergeOpts(true))
	if err != nil {
		t.Fatal(err)
	}
	sim.OnMerge(func(*Peer, string) { t.Error("merge fired with IslandMerge disabled") })
	defer sim.Stop()
	runIslandMergeScenario(t, sim)
}
