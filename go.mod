module jxta

go 1.24
