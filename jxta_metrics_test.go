package jxta

import (
	"strings"
	"testing"
	"time"
)

// TestMetricsPureObserver proves the runtime instrumentation changes
// nothing: a run that scrapes every peer's registry, Prometheus encoding
// and trace ring between every virtual segment must land on exactly the
// trajectory of an identical unobserved run — same steps, same message
// and byte counts. (The registry is always on; this pins that *reading*
// it mid-run is also free of protocol effects.)
func TestMetricsPureObserver(t *testing.T) {
	run := func(scrape bool) (uint64, map[string]float64) {
		sim := newSim(t, 5, 0, 2, 4)
		sim.Start()
		defer sim.Stop()
		for seg := 0; seg < 6; seg++ {
			sim.Run(3 * time.Minute)
			if !scrape {
				continue
			}
			for i := 0; i < sim.NumRendezvous(); i++ {
				sim.Rendezvous(i).MetricsSnapshot()
				sim.Rendezvous(i).WriteMetrics(&strings.Builder{})
				sim.Rendezvous(i).TraceEvents()
			}
			for i := 0; i < sim.NumEdges(); i++ {
				sim.Edge(i).MetricsSnapshot()
				sim.Edge(i).TraceEvents()
			}
			sim.OverlayMetrics()
		}
		return sim.Steps(), sim.OverlayMetrics()
	}
	stepsA, netA := run(false)
	stepsB, netB := run(true)
	if stepsA != stepsB {
		t.Fatalf("scraping perturbed the run: %d steps vs %d", stepsB, stepsA)
	}
	for _, k := range []string{"jxta_net_messages_total", "jxta_net_bytes_total", "jxta_net_dropped_total"} {
		if netA[k] != netB[k] {
			t.Errorf("%s: %v observed vs %v unobserved", k, netB[k], netA[k])
		}
		if k != "jxta_net_dropped_total" && netB[k] == 0 {
			t.Errorf("%s is zero after a 18-minute run", k)
		}
	}
}

// TestMetricsComponentCoverage asserts a converged peer's /metrics-format
// output covers every protocol component, and that the load-bearing series
// are non-zero where the scenario exercised them.
func TestMetricsComponentCoverage(t *testing.T) {
	sim := newSim(t, 4, 0, 3)
	sim.Start()
	defer sim.Stop()
	sim.Run(12 * time.Minute)

	var b strings.Builder
	if err := sim.Rendezvous(0).WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, comp := range []string{
		"jxta_endpoint_", "jxta_resolver_", "jxta_rendezvous_",
		"jxta_peerview_", "jxta_discovery_", "jxta_socket_",
		"jxta_pipe_", "jxta_node_", "jxta_cache_",
	} {
		if !strings.Contains(text, comp) {
			t.Errorf("rendezvous metrics missing component %s", comp)
		}
	}
	rdv := sim.Rendezvous(0).MetricsSnapshot()
	if rdv["jxta_rendezvous_leases_granted_total"] == 0 {
		t.Error("rendezvous granted no leases with two edges attached")
	}
	if rdv["jxta_peerview_size"] == 0 {
		t.Error("peerview size gauge is zero after convergence")
	}
	if rdv[`jxta_endpoint_tx_messages_total{service="rdv.peerview"}`] == 0 {
		t.Error("per-service endpoint counter never incremented")
	}

	edge := sim.Edge(0).MetricsSnapshot()
	if edge["jxta_node_role"] != 0 || rdv["jxta_node_role"] != 1 {
		t.Errorf("role gauges: edge=%v rdv=%v", edge["jxta_node_role"], rdv["jxta_node_role"])
	}
	if edge["jxta_rendezvous_connected"] != 1 {
		t.Error("edge not connected per gauge")
	}

	// The edge's trace ring must hold its lease acquisition.
	found := false
	for _, ev := range sim.Edge(0).TraceEvents() {
		if ev.Type == "lease-acquired" {
			found = true
		}
	}
	if !found {
		t.Errorf("edge trace has no lease-acquired event: %v", sim.Edge(0).TraceEvents())
	}
}

// TestMetricsSurvivePromotion pins the re-instrumentation path: when
// self-healing promotes an edge in place, the fresh peerview the promotion
// builds must land on the node's shared registry (size gauge live), and
// the trace ring must carry the promotion event.
func TestMetricsSurvivePromotion(t *testing.T) {
	sim, err := NewSimulation(SimOptions{
		Seed: 3, Rendezvous: 2,
		Edges: []EdgeSpec{{AttachTo: 0}, {AttachTo: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Start()
	defer sim.Stop()
	sim.Run(10 * time.Minute)

	p := sim.Edge(0)
	p.Promote()
	sim.Run(5 * time.Minute)
	if !p.IsRendezvous() {
		t.Fatal("promotion did not take")
	}
	snap := p.MetricsSnapshot()
	if snap["jxta_node_role"] != 1 {
		t.Error("role gauge did not flip on promotion")
	}
	if snap["jxta_peerview_size"] == 0 {
		t.Error("promoted node's peerview gauge dead: re-instrumentation lost")
	}
	found := false
	for _, ev := range p.TraceEvents() {
		if ev.Type == "promotion" {
			found = true
		}
	}
	if !found {
		t.Errorf("no promotion event in trace: %v", p.TraceEvents())
	}
}
